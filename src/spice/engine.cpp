#include "spice/engine.h"

#include "obs/obs.h"
#include "robust/failpoint.h"
#include "spice/mos1.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace catlift::spice {

using netlist::Device;
using netlist::DeviceKind;

Simulator::Simulator(netlist::Circuit ckt, SimOptions opt)
    : ckt_(std::move(ckt)), opt_(opt) {
    ckt_.validate();

    // Node table (ground excluded from unknowns).
    for (const std::string& n : ckt_.node_names()) {
        if (n == netlist::kGround) continue;
        node_index_[n] = node_names_.size();
        node_names_.push_back(n);
    }
    n_nodes_ = node_names_.size();

    // Branch currents: one per voltage source.
    for (std::size_t i = 0; i < ckt_.devices.size(); ++i)
        if (ckt_.devices[i].kind == DeviceKind::VSource)
            vsource_devs_.push_back(i);
    n_branches_ = vsource_devs_.size();
    stats_.matrix_size = n_nodes_ + n_branches_;

    // Linear device instances with resolved node indices: the structural
    // pass runs exactly once, so the Newton hot path never resolves a
    // node name again.
    std::size_t branch = 0;
    for (std::size_t i = 0; i < ckt_.devices.size(); ++i) {
        const Device& d = ckt_.devices[i];
        switch (d.kind) {
            case DeviceKind::Resistor: {
                ResInstance r;
                r.n1 = node_id(d.nodes[0]);
                r.n2 = node_id(d.nodes[1]);
                r.g = 1.0 / d.value;
                res_.push_back(r);
                break;
            }
            case DeviceKind::ISource: {
                ISrcInstance s;
                s.dev = i;
                s.np = node_id(d.nodes[0]);
                s.nm = node_id(d.nodes[1]);
                isrc_.push_back(s);
                break;
            }
            case DeviceKind::VSource: {
                VSrcInstance s;
                s.dev = i;
                s.np = node_id(d.nodes[0]);
                s.nm = node_id(d.nodes[1]);
                s.row = n_nodes_ + branch;
                vsrc_.push_back(s);
                ++branch;
                break;
            }
            default:
                break;
        }
    }

    // MOS instances with resolved nodes.
    for (std::size_t i = 0; i < ckt_.devices.size(); ++i) {
        const Device& d = ckt_.devices[i];
        if (d.kind != DeviceKind::Mosfet) continue;
        MosInstance m;
        m.dev = i;
        m.d = node_id(d.nodes[Device::kDrain]);
        m.g = node_id(d.nodes[Device::kGate]);
        m.s = node_id(d.nodes[Device::kSource]);
        m.w = d.w;
        m.l = d.l;
        m.model = &ckt_.model_of(d);
        mos_.push_back(m);
    }

    // Capacitive elements: explicit capacitors, MOS gate caps, cmin.
    for (const Device& d : ckt_.devices) {
        if (d.kind != DeviceKind::Capacitor) continue;
        CapInstance c;
        c.n1 = node_id(d.nodes[0]);
        c.n2 = node_id(d.nodes[1]);
        c.c = d.value;
        c.v_prev = d.ic.value_or(0.0);
        caps_.push_back(c);
    }
    for (const MosInstance& m : mos_) {
        const MosCaps mc = mos1_caps(*m.model, m.w, m.l);
        caps_.push_back(CapInstance{m.g, m.s, mc.cgs, 0.0, 0.0});
        caps_.push_back(CapInstance{m.g, m.d, mc.cgd, 0.0, 0.0});
    }
    if (opt_.cmin > 0.0) {
        for (std::size_t n = 0; n < n_nodes_; ++n)
            caps_.push_back(
                CapInstance{static_cast<int>(n), -1, opt_.cmin, 0.0, 0.0});
    }

    build_kernel();
}

int Simulator::node_id(const std::string& name) const {
    if (name == netlist::kGround) return -1;
    auto it = node_index_.find(name);
    require(it != node_index_.end(), "unknown node " + name);
    return static_cast<int>(it->second);
}

void Simulator::set_source_dc(const std::string& name, double value) {
    Device& d = ckt_.device(name);
    require(d.kind == DeviceKind::VSource || d.kind == DeviceKind::ISource,
            "set_source_dc: " + name + " is not a source");
    d.source = netlist::SourceSpec::make_dc(value);
}

// ---------------------------------------------------------------------------
// Kernel: one-time structural pass

int Simulator::add_site(int r, int c) {
    if (r < 0 || c < 0) return -1;
    sites_.emplace_back(r, c);
    return static_cast<int>(sites_.size()) - 1;
}

void Simulator::build_kernel() {
    const std::size_t n = n_nodes_ + n_branches_;

    // Sites [0, n_nodes_) are the node diagonals (gmin), by construction.
    sites_.clear();
    for (std::size_t i = 0; i < n_nodes_; ++i)
        add_site(static_cast<int>(i), static_cast<int>(i));
    for (ResInstance& r : res_) {
        r.s_11 = add_site(r.n1, r.n1);
        r.s_22 = add_site(r.n2, r.n2);
        r.s_12 = add_site(r.n1, r.n2);
        r.s_21 = add_site(r.n2, r.n1);
    }
    for (VSrcInstance& s : vsrc_) {
        const int row = static_cast<int>(s.row);
        s.s_pb = add_site(s.np, row);
        s.s_bp = add_site(row, s.np);
        s.s_mb = add_site(s.nm, row);
        s.s_bm = add_site(row, s.nm);
    }
    for (CapInstance& c : caps_) {
        c.s_11 = add_site(c.n1, c.n1);
        c.s_22 = add_site(c.n2, c.n2);
        c.s_12 = add_site(c.n1, c.n2);
        c.s_21 = add_site(c.n2, c.n1);
    }
    for (MosInstance& m : mos_) {
        m.s_dd = add_site(m.d, m.d);
        m.s_dg = add_site(m.d, m.g);
        m.s_ds = add_site(m.d, m.s);
        m.s_sd = add_site(m.s, m.d);
        m.s_sg = add_site(m.s, m.g);
        m.s_ss = add_site(m.s, m.s);
    }

    // Backend selection and the site -> value-slot lookup table.
    sparse_ = n > 0 && n >= opt_.sparse_threshold;
    if (sparse_) {
        obs::Span sp(obs::Phase::Analyze);
        slu_.set_ordering(opt_.ordering);
        slot_lut_ = slu_.analyze(n, sites_);
        // Campaign-shared symbolic analysis: adopt the nominal circuit's
        // elimination order (patched with this circuit's injected
        // unknowns at the end) instead of running minimum degree here.
        // After analyze(), which defines the pattern the order is
        // validated against.
        if (opt_.ordering == SparseOrdering::Amd && opt_.symbolic_cache) {
            preorder_cols_ = cache_order();
            if (!preorder_cols_.empty()) {
                slu_.set_preorder(preorder_cols_);
                ++stats_.symbolic_cache_hits;
                if (obs::events_enabled())
                    obs::emit_event(
                        "symbolic_cache_hit",
                        {obs::arg("unknowns",
                                  static_cast<std::int64_t>(n))});
            } else if (obs::events_enabled()) {
                obs::emit_event(
                    "symbolic_cache_miss",
                    {obs::arg("unknowns", static_cast<std::int64_t>(n))});
            }
        }
        vals_size_ = slu_.nnz();
        svals_static_.assign(vals_size_, 0.0);
        svals_work_.assign(vals_size_, 0.0);
    } else {
        slot_lut_.resize(sites_.size());
        for (std::size_t e = 0; e < sites_.size(); ++e)
            slot_lut_[e] = sites_[e].first * static_cast<int>(n) +
                           sites_[e].second;
        vals_size_ = n * n;
        a_static_.reset(n);
        a_work_.reset(n);
    }

    rhs_base_.assign(n, 0.0);
    rhs_mos_.assign(n, 0.0);
    rhs_.assign(n, 0.0);
    x_new_.assign(n, 0.0);
}

std::string Simulator::unknown_name(std::size_t i) const {
    if (i < n_nodes_) return node_names_[i];
    return "b:" + ckt_.devices[vsource_devs_[i - n_nodes_]].name;
}

std::vector<int> Simulator::cache_order() const {
    const SymbolicCache& cache = *opt_.symbolic_cache;
    if (cache.rank.empty()) return {};
    const std::size_t n = n_nodes_ + n_branches_;
    // Sort unknowns by cached rank; unknowns the injection created (split
    // nodes, injected source branches) have no cached rank and sort last,
    // in index order -- eliminating them at the end bounds the extra fill
    // to their couple of coupling entries.
    const int kNoRank = std::numeric_limits<int>::max();
    std::vector<std::pair<int, int>> keyed(n);
    std::size_t matched = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const auto it = cache.rank.find(unknown_name(i));
        if (it != cache.rank.end()) ++matched;
        keyed[i] = {it == cache.rank.end() ? kNoRank : it->second,
                    static_cast<int>(i)};
    }
    // A cache from a different circuit matches few or no unknowns; the
    // resulting order would be the (arbitrary) index order, with the
    // catastrophic fill a fill-reducing ordering exists to avoid.  Only
    // adopt the cache when it covers most of this circuit's unknowns --
    // a faulty variant of the cached circuit always does.
    if (2 * matched <= n) return {};
    std::sort(keyed.begin(), keyed.end());
    std::vector<int> order(n);
    for (std::size_t k = 0; k < n; ++k) order[k] = keyed[k].second;
    return order;
}

std::shared_ptr<const SymbolicCache> Simulator::symbolic_cache() const {
    if (!sparse_) return nullptr;
    const std::vector<int> order = slu_.column_order();
    if (order.size() != n_nodes_ + n_branches_) return nullptr;
    auto cache = std::make_shared<SymbolicCache>();
    for (std::size_t k = 0; k < order.size(); ++k)
        cache->rank[unknown_name(static_cast<std::size_t>(order[k]))] =
            static_cast<int>(k);
    return cache;
}

SimStats stats_delta(const SimStats& now, const SimStats& base) {
    SimStats d = now;
    d.nr_iterations -= base.nr_iterations;
    d.lu_factorizations -= base.lu_factorizations;
    d.tran_steps -= base.tran_steps;
    d.step_cuts -= base.step_cuts;
    d.steps_saved -= base.steps_saved;
    d.grid_points_interpolated -= base.grid_points_interpolated;
    d.lte_rejections -= base.lte_rejections;
    d.ac_points -= base.ac_points;
    d.ac_points_saved -= base.ac_points_saved;
    d.warm_start_solves -= base.warm_start_solves;
    d.nr_saved_warm -= base.nr_saved_warm;
    d.bypass_solves -= base.bypass_solves;
    d.sparse_full_factors -= base.sparse_full_factors;
    d.sparse_refactors -= base.sparse_refactors;
    d.device_stamps -= base.device_stamps;
    d.device_stamp_skips -= base.device_stamp_skips;
    d.symbolic_cache_hits -= base.symbolic_cache_hits;
    d.ordering_seconds -= base.ordering_seconds;
    d.numeric_seconds -= base.numeric_seconds;
    return d;
}

// ---------------------------------------------------------------------------
// Kernel: static / dynamic stamp split

void Simulator::ensure_static(bool dc, double h, double extra_gmin) {
    if (static_key_.matches(dc, h, extra_gmin, opt_.method)) return;

    double* vs = sparse_ ? svals_static_.data() : a_static_.data();
    std::fill(vs, vs + vals_size_, 0.0);
    auto add = [&](int site, double v) {
        if (site >= 0) vs[slot_lut_[static_cast<std::size_t>(site)]] += v;
    };

    // gmin on every node (diagonal sites are 0..n_nodes_-1).
    const double g_floor = opt_.gmin + extra_gmin;
    for (std::size_t i = 0; i < n_nodes_; ++i)
        add(static_cast<int>(i), g_floor);

    for (const ResInstance& r : res_) {
        add(r.s_11, r.g);
        add(r.s_22, r.g);
        add(r.s_12, -r.g);
        add(r.s_21, -r.g);
    }
    for (const VSrcInstance& s : vsrc_) {
        add(s.s_pb, 1.0);
        add(s.s_bp, 1.0);
        add(s.s_mb, -1.0);
        add(s.s_bm, -1.0);
    }
    // Capacitor companion conductances (transient only): fixed for a given
    // stepsize, so they live in the static part.  (The per-MOS gmin
    // leakage stays in the dynamic stamp: interleaving it with each
    // device's companion keeps the floating-point summation order -- and
    // therefore every verdict of a borderline fault -- identical to the
    // historical single-pass assembly.)
    if (!dc) {
        for (const CapInstance& c : caps_) {
            const double geq = (opt_.method == Method::Trapezoidal)
                                   ? 2.0 * c.c / h
                                   : c.c / h;
            add(c.s_11, geq);
            add(c.s_22, geq);
            add(c.s_12, -geq);
            add(c.s_21, -geq);
        }
    }

    static_key_.valid = true;
    static_key_.dc = dc;
    static_key_.h = h;
    static_key_.extra_gmin = extra_gmin;
    static_key_.method = opt_.method;
    jac_valid_ = false;  // the old factorization sat on the old static part
}

void Simulator::build_rhs_base(bool dc, double h, double t,
                               double src_scale) {
    std::fill(rhs_base_.begin(), rhs_base_.end(), 0.0);
    for (const ISrcInstance& s : isrc_) {
        const Device& d = ckt_.devices[s.dev];
        // SPICE convention: positive current flows from node+ through the
        // source to node-.
        const double i =
            src_scale * (dc ? d.source.dc_value() : d.source.value_at(t));
        if (s.np >= 0) rhs_base_[static_cast<std::size_t>(s.np)] -= i;
        if (s.nm >= 0) rhs_base_[static_cast<std::size_t>(s.nm)] += i;
    }
    for (const VSrcInstance& s : vsrc_) {
        const Device& d = ckt_.devices[s.dev];
        rhs_base_[s.row] =
            src_scale * (dc ? d.source.dc_value() : d.source.value_at(t));
    }
    if (!dc) {
        for (const CapInstance& c : caps_) {
            double geq, ihist;
            if (opt_.method == Method::Trapezoidal) {
                geq = 2.0 * c.c / h;
                ihist = geq * c.v_prev + c.i_prev;
            } else {
                geq = c.c / h;
                ihist = geq * c.v_prev;
            }
            // Companion current source: ihist *into* n1.
            if (c.n1 >= 0) rhs_base_[static_cast<std::size_t>(c.n1)] += ihist;
            if (c.n2 >= 0) rhs_base_[static_cast<std::size_t>(c.n2)] -= ihist;
        }
    }
}

bool Simulator::device_moved(const MosInstance& m,
                             const std::vector<double>& x,
                             double tol) const {
    const double vd = volt(x, m.d), vg = volt(x, m.g), vs = volt(x, m.s);
    return std::fabs(vd - m.lin_vd) >
               tol * std::max(1.0, std::fabs(m.lin_vd)) ||
           std::fabs(vg - m.lin_vg) >
               tol * std::max(1.0, std::fabs(m.lin_vg)) ||
           std::fabs(vs - m.lin_vs) >
               tol * std::max(1.0, std::fabs(m.lin_vs));
}

void Simulator::invalidate_device_stamps() {
    for (MosInstance& m : mos_) m.lin_valid = false;
}

void Simulator::stamp_dynamic(const std::vector<double>& x, bool fresh) {
    double* vw = sparse_ ? svals_work_.data() : a_work_.data();
    const double* vs = sparse_ ? svals_static_.data() : a_static_.data();
    std::copy(vs, vs + vals_size_, vw);
    std::fill(rhs_mos_.begin(), rhs_mos_.end(), 0.0);
    // The companion currents are stamped straight into rhs_ (on top of the
    // base) so the accumulation order matches the historical single-pass
    // assembly bit for bit; rhs_mos_ keeps the MOS-only part for the
    // bypass path to reuse.
    rhs_ = rhs_base_;

    auto add = [&](int site, double v) {
        if (site >= 0) vw[slot_lut_[static_cast<std::size_t>(site)]] += v;
    };

    for (MosInstance& m : mos_) {
        // Per-device bypass: a device whose terminals stayed within
        // bypass_tol of its linearization replays the cached stamp in the
        // same add order as a fresh evaluation -- the model evaluation
        // (the per-device cost) is skipped; the approximation is exactly
        // the modified-Newton one the all-or-nothing bypass made, applied
        // per device instead of globally.
        const bool evaluate = fresh || !opt_.bypass || !m.lin_valid ||
                              device_moved(m, x, opt_.device_bypass_tol);
        if (evaluate) {
            const double sign = m.model->is_nmos ? 1.0 : -1.0;
            const double vd = volt(x, m.d), vg = volt(x, m.g),
                         vs_ = volt(x, m.s);
            double vdn = sign * vd, vgn = sign * vg, vsn = sign * vs_;
            int ed = m.d, es = m.s;
            bool swapped = false;
            if (vdn < vsn) {
                std::swap(vdn, vsn);
                std::swap(ed, es);
                swapped = true;
            }
            const Mos1Point p =
                mos1_eval_normalized(*m.model, m.w, m.l, vgn - vsn, vdn - vsn);
            // Real-space quantities referenced to the *effective* source.
            const double i0 = sign * p.id;  // current into effective drain
            const double v_es = volt(x, es);
            const double vgs_r = volt(x, m.g) - v_es;
            const double vds_r = volt(x, ed) - v_es;

            // Stamp sites for the (effective drain, effective source)
            // rows: when the device operates reversed, the drain-row
            // values land on the source-row sites and vice versa.
            m.c_dd = swapped ? m.s_ss : m.s_dd;
            m.c_dg = swapped ? m.s_sg : m.s_dg;
            m.c_ds = swapped ? m.s_sd : m.s_ds;
            m.c_ss = swapped ? m.s_dd : m.s_ss;
            m.c_sg = swapped ? m.s_dg : m.s_sg;
            m.c_sd = swapped ? m.s_ds : m.s_sd;
            m.ed = ed;
            m.es = es;
            m.g_dd = p.gds;
            m.g_dg = p.gm;
            m.g_ds = -(p.gds + p.gm);
            m.g_ss = p.gds + p.gm;
            m.g_sg = -p.gm;
            m.g_sd = -p.gds;
            m.ieq = i0 - p.gm * vgs_r - p.gds * vds_r;
            m.lin_vd = vd;
            m.lin_vg = vg;
            m.lin_vs = vs_;
            m.lin_valid = true;
            ++stats_.device_stamps;
        } else {
            ++stats_.device_stamp_skips;
        }

        // i(ed) = gds*V(ed) + gm*V(g) - (gds+gm)*V(es) + ieq
        if (m.ed >= 0) {
            add(m.c_dd, m.g_dd);
            add(m.c_dg, m.g_dg);
            add(m.c_ds, m.g_ds);
            rhs_[static_cast<std::size_t>(m.ed)] -= m.ieq;
            rhs_mos_[static_cast<std::size_t>(m.ed)] -= m.ieq;
        }
        if (m.es >= 0) {
            add(m.c_ss, m.g_ss);
            add(m.c_sg, m.g_sg);
            add(m.c_sd, m.g_sd);
            rhs_[static_cast<std::size_t>(m.es)] += m.ieq;
            rhs_mos_[static_cast<std::size_t>(m.es)] += m.ieq;
        }
        // Weak drain-source leakage keeps switched-off stacks well-posed.
        add(m.s_dd, opt_.gmin);
        add(m.s_ss, opt_.gmin);
        add(m.s_ds, -opt_.gmin);
        add(m.s_sd, -opt_.gmin);
    }

    jac_key_ = static_key_;
    // Not yet a valid bypass factorization: newton() marks it valid only
    // once the stamped matrix has actually been factored, so a failed
    // (singular) factorization or a stamp-only caller (the AC setup) can
    // never leave the bypass pointing at a stale or absent factorization.
    jac_valid_ = false;
}

bool Simulator::can_bypass(const std::vector<double>& x) const {
    if (!opt_.bypass || !jac_valid_ || !static_key_.valid) return false;
    if (!jac_key_.matches(static_key_.dc, static_key_.h,
                          static_key_.extra_gmin, static_key_.method))
        return false;
    for (const MosInstance& m : mos_)
        if (!m.lin_valid || device_moved(m, x, opt_.bypass_tol)) return false;
    return true;
}

void Simulator::sync_sparse_timers() {
    stats_.ordering_seconds =
        slu_.ordering_seconds() + cslu_.ordering_seconds();
    stats_.numeric_seconds = slu_.numeric_seconds() + cslu_.numeric_seconds();
}

void Simulator::begin_analysis() {
    analysis_base_ = stats_;
    budget_armed_ = opt_.max_wall_seconds > 0.0 || opt_.max_nr_total > 0 ||
                    opt_.max_tran_steps > 0;
    if (budget_armed_) budget_t0_ = std::chrono::steady_clock::now();
}

void Simulator::check_budget() {
    if (!budget_armed_) return;
    if (opt_.max_nr_total > 0 &&
        stats_.nr_iterations - analysis_base_.nr_iterations >=
            opt_.max_nr_total)
        throw BudgetExceeded("budget: NR iteration budget of " +
                             std::to_string(opt_.max_nr_total) +
                             " exhausted");
    if (opt_.max_tran_steps > 0 &&
        stats_.tran_steps - analysis_base_.tran_steps >= opt_.max_tran_steps)
        throw BudgetExceeded("budget: transient step budget of " +
                             std::to_string(opt_.max_tran_steps) +
                             " exhausted");
    if (opt_.max_wall_seconds > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      budget_t0_)
                .count() >= opt_.max_wall_seconds)
        throw BudgetExceeded("budget: wall-clock deadline of " +
                             std::to_string(opt_.max_wall_seconds) +
                             " s exceeded");
}

bool Simulator::factor_work() {
    obs::Span sp(obs::Phase::Factor);
    if (auto fp = robust::hit("kernel.factor"))
        if (fp->action == robust::FailAction::Singular) return false;
    if (sparse_) {
        const std::size_t before_full = slu_.full_factors();
        const bool ok = slu_.factor(svals_work_);
        sync_sparse_timers();
        if (!ok) return false;
        if (slu_.full_factors() > before_full) {
            ++stats_.sparse_full_factors;
        } else {
            ++stats_.sparse_refactors;
            sp.set_phase(obs::Phase::Refactor);
        }
    } else {
        if (!lu_.factor(a_work_)) return false;
    }
    ++stats_.lu_factorizations;
    return true;
}

void Simulator::solve_work() {
    obs::Span sp(obs::Phase::Solve);
    if (sparse_) {
        x_new_ = rhs_;
        slu_.solve(x_new_);
    } else {
        lu_.solve(rhs_, x_new_);
    }
    if (auto fp = robust::hit("kernel.solve"))
        if (fp->action == robust::FailAction::Nan && !x_new_.empty())
            x_new_[0] = std::numeric_limits<double>::quiet_NaN();
}

bool Simulator::newton(std::vector<double>& x, double h, double t, bool dc,
                       double src_scale, double extra_gmin, int max_iter) {
    obs::Span sp(obs::Phase::Newton);
    robust::hit("kernel.newton");  // hang/exception injection site
    const std::size_t n = n_nodes_ + n_branches_;
    ensure_static(dc, h, extra_gmin);
    build_rhs_base(dc, h, t, src_scale);

    for (int it = 0; it < max_iter; ++it) {
        if (!opt_.incremental) {
            // Seed-kernel ablation: forget the static part, the
            // factorization and every cached device linearization so
            // every iteration pays the full rebuild.
            static_key_.valid = false;
            jac_valid_ = false;
            invalidate_device_stamps();
            ensure_static(dc, h, extra_gmin);
            build_rhs_base(dc, h, t, src_scale);
        }
        if (can_bypass(x)) {
            // Modified Newton: the device linearizations and the
            // factorization are reused; only the rhs is fresh.
            ++stats_.bypass_solves;
            rhs_ = rhs_base_;
            for (std::size_t i = 0; i < n; ++i) rhs_[i] += rhs_mos_[i];
        } else {
            stamp_dynamic(x);  // also rebuilds rhs_ from the base
            if (!factor_work()) return false;
            jac_valid_ = true;
        }
        solve_work();
        ++stats_.nr_iterations;
        check_budget();

        // Damped update with voltage limiting on node unknowns.
        double max_rel = 0.0;
        bool limited = false;
        for (std::size_t i = 0; i < n; ++i) {
            double dv = x_new_[i] - x[i];
            if (i < n_nodes_ && std::fabs(dv) > opt_.dv_limit) {
                dv = std::copysign(opt_.dv_limit, dv);
                limited = true;
            }
            x[i] += dv;
            const double tol = (i < n_nodes_)
                                   ? opt_.vntol + opt_.reltol * std::fabs(x[i])
                                   : opt_.abstol + opt_.reltol * std::fabs(x[i]);
            max_rel = std::max(max_rel, std::fabs(dv) / tol);
            if (!std::isfinite(x[i]) || std::fabs(x[i]) > 1e9) return false;
        }
        if (!limited && max_rel < 1.0 && it >= 1) return true;
    }
    return false;
}

DcResult Simulator::dc_op() {
    // A standalone operating-point solve (DC fault screens) is its own
    // analysis window, so the execution budgets cover the whole strategy
    // ladder.  tran()/ac() call dc_op_impl() directly: their windows span
    // the internal OP solve.
    begin_analysis();
    return dc_op_impl(nullptr);
}

DcResult Simulator::dc_op(const std::map<std::string, double>& initial) {
    begin_analysis();
    std::vector<double> x0(n_nodes_ + n_branches_, 0.0);
    for (std::size_t i = 0; i < n_nodes_; ++i) {
        const auto it = initial.find(node_names_[i]);
        if (it != initial.end()) x0[i] = it->second;
    }
    return dc_op_impl(&x0);
}

DcResult Simulator::dc_op_impl(const std::vector<double>* warm) {
    DcResult res;
    const std::size_t n = n_nodes_ + n_branches_;
    std::vector<double> x(n, 0.0);
    const std::size_t it_entry = stats_.nr_iterations;

    // Warm start: plain Newton from the supplied solution.  A nearby
    // operating point (the previous sweep level, the nominal circuit of a
    // fault screen) usually converges in a couple of iterations; the cold
    // ladder below stays as the fallback.
    if (warm) {
        x = *warm;
        if (newton(x, 0.0, 0.0, /*dc=*/true, 1.0, 0.0, opt_.max_nr)) {
            res.converged = true;
            res.strategy = "warm";
            const std::size_t spent = stats_.nr_iterations - it_entry;
            ++stats_.warm_start_solves;
            if (last_cold_nr_ > spent)
                stats_.nr_saved_warm += last_cold_nr_ - spent;
        }
    }

    const std::size_t it_cold = stats_.nr_iterations;
    if (!res.converged) {
        // Each strategy is retried over a damping ladder: regenerative
        // circuits (the VCO's Schmitt trigger) limit-cycle under a generous
        // voltage step but converge cleanly once the per-iteration update is
        // clamped harder.
        const double dv_ladder[] = {opt_.dv_limit, 0.5, 0.2};
        const double dv_saved = opt_.dv_limit;

        for (double dv : dv_ladder) {
            if (res.converged) break;
            if (dv > dv_saved) continue;
            opt_.dv_limit = dv;

            // Strategy 1: plain Newton.
            x.assign(n, 0.0);
            if (newton(x, 0.0, 0.0, /*dc=*/true, 1.0, 0.0, opt_.max_nr)) {
                res.converged = true;
                res.strategy = "nr";
                break;
            }

            // Strategy 2: gmin stepping.
            x.assign(n, 0.0);
            bool ok = true;
            for (double g = 1e-2; g >= 1e-13; g *= 0.1) {
                if (!newton(x, 0.0, 0.0, true, 1.0, g, opt_.max_nr)) {
                    ok = false;
                    break;
                }
            }
            if (ok && newton(x, 0.0, 0.0, true, 1.0, 0.0, opt_.max_nr)) {
                res.converged = true;
                res.strategy = "gmin";
                break;
            }

            // Strategy 3: source stepping.
            x.assign(n, 0.0);
            ok = true;
            for (double s = 0.05; s <= 1.0 + 1e-12; s += 0.05) {
                if (!newton(x, 0.0, 0.0, true, std::min(s, 1.0), 0.0,
                            opt_.max_nr)) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                res.converged = true;
                res.strategy = "source";
                break;
            }
        }
        opt_.dv_limit = dv_saved;
        // The cold cost baselines future warm starts of this simulator.
        if (res.converged) last_cold_nr_ = stats_.nr_iterations - it_cold;
    }

    res.iterations = static_cast<int>(stats_.nr_iterations - it_entry);
    if (res.converged) {
        for (std::size_t i = 0; i < n_nodes_; ++i)
            res.voltages[node_names_[i]] = x[i];
        res.voltages[netlist::kGround] = 0.0;
    }
    return res;
}

void Simulator::update_cap_history(const std::vector<double>& x, double h) {
    for (CapInstance& c : caps_) {
        const double v = volt(x, c.n1) - volt(x, c.n2);
        double i;
        if (opt_.method == Method::Trapezoidal)
            i = (2.0 * c.c / h) * (v - c.v_prev) - c.i_prev;
        else
            i = (c.c / h) * (v - c.v_prev);
        c.v_prev = v;
        c.i_prev = i;
    }
}

double Simulator::lte_ratio(const std::vector<double>& x_prev, double h_prev,
                            const std::vector<double>& x_old,
                            const std::vector<double>& x_new,
                            double dt) const {
    if (h_prev <= 0.0) return std::numeric_limits<double>::infinity();
    const double slope_scale = dt / h_prev;
    double worst = 0.0;
    for (std::size_t i = 0; i < n_nodes_; ++i) {
        const double pred = x_old[i] + (x_old[i] - x_prev[i]) * slope_scale;
        const double err = std::fabs(x_new[i] - pred);
        const double tol = opt_.lte_tol * std::max(1.0, std::fabs(x_new[i]));
        worst = std::max(worst, err / tol);
    }
    return worst;
}

Waveforms Simulator::tran() {
    require(ckt_.tran.has_value(), "circuit has no .tran card");
    return tran(*ckt_.tran);
}

std::vector<DcResult> dc_sweep(const netlist::Circuit& ckt,
                               const std::string& source,
                               const std::vector<double>& levels,
                               const SimOptions& opt,
                               const DcSweepObserver& observer,
                               SimStats* stats) {
    require(!levels.empty(), "dc_sweep: no levels");
    const Device& d = ckt.device(source);
    require(d.kind == DeviceKind::VSource || d.kind == DeviceKind::ISource,
            "dc_sweep: " + source + " is not a source");

    // One simulator for the whole sweep: each level after the first is
    // warm-started from the previous level's solution.
    Simulator sim(ckt, opt);
    std::vector<DcResult> out;
    out.reserve(levels.size());
    std::map<std::string, double> warm;
    for (double v : levels) {
        sim.set_source_dc(source, v);
        DcResult r = warm.empty() ? sim.dc_op() : sim.dc_op(warm);
        if (r.converged) warm = r.voltages;
        const bool stop = observer && !observer(v, r);
        out.push_back(std::move(r));
        if (stop) break;
    }
    if (stats) *stats = sim.stats();
    return out;
}

AcResult Simulator::ac() {
    require(ckt_.ac.has_value(), "circuit has no .ac card");
    AcSpec spec;
    spec.points_per_decade = ckt_.ac->points_per_decade;
    spec.fstart = ckt_.ac->fstart;
    spec.fstop = ckt_.ac->fstop;
    return ac(spec);
}

AcResult Simulator::ac(const AcSpec& spec) { return ac(spec, AcPointObserver{}); }

AcResult Simulator::ac(const AcSpec& spec, const AcPointObserver& observer) {
    require(spec.fstart > 0 && spec.fstop > spec.fstart &&
                spec.points_per_decade > 0,
            "bad .ac parameters");
    begin_analysis();

    // Operating point (dc_op_impl keeps the sweep's own analysis window
    // and budgets intact; the public dc_op() would re-arm them).
    const DcResult op = dc_op_impl(nullptr);
    require(op.converged, "ac: DC operating point failed");
    const std::size_t n = n_nodes_ + n_branches_;
    std::vector<double> x0(n, 0.0);
    for (std::size_t i = 0; i < n_nodes_; ++i)
        x0[i] = op.voltages.at(node_names_[i]);

    // Small-signal G: exactly the DC Jacobian at the operating point
    // (resistors, source incidence, gmin, MOS gm/gds), produced by the
    // same static + dynamic stamp split the Newton loop uses.  Every
    // device is evaluated fresh at x0: a cached linearization from the
    // operating-point solve sits within bypass_tol of x0 but is not the
    // Jacobian *at* x0.
    ensure_static(/*dc=*/true, 0.0, 0.0);
    stamp_dynamic(x0, /*fresh=*/true);
    const double* gv = sparse_ ? svals_work_.data() : a_work_.data();

    // AC excitation: every source participates with its ac_mag.
    std::vector<std::complex<double>> rhs(n, 0.0);
    for (const ISrcInstance& s : isrc_) {
        const double mag = ckt_.devices[s.dev].source.ac_mag;
        if (s.np >= 0) rhs[static_cast<std::size_t>(s.np)] -= mag;
        if (s.nm >= 0) rhs[static_cast<std::size_t>(s.nm)] += mag;
    }
    for (const VSrcInstance& s : vsrc_)
        rhs[s.row] = ckt_.devices[s.dev].source.ac_mag;

    AcResult res;
    for (const std::string& nn : node_names_) res.add_node(nn);

    // Complex backend mirrors the real one: same sites, same slots; the
    // complex pattern analysis runs once, lazily, on the first sweep.
    if (sparse_ && !ac_kernel_ready_) {
        obs::Span asp(obs::Phase::Analyze);
        // The complex backend mirrors the real one's ordering setup so a
        // campaign-shared preordering covers the AC sweep too.
        cslu_.set_ordering(opt_.ordering);
        // analyze() is deterministic over the same site list, so the
        // complex solver hands out the same slots as the real one; the
        // check turns any future divergence into a loud failure instead
        // of silently mis-stamped transfer functions.
        const std::vector<int> cslots = cslu_.analyze(n, sites_);
        if (!preorder_cols_.empty()) {
            cslu_.set_preorder(preorder_cols_);
        } else if (opt_.ordering == SparseOrdering::Amd) {
            // The real backend has already ordered this exact pattern
            // (the operating point factored above); reuse its pivot
            // column order instead of running minimum degree twice.
            const std::vector<int> order = slu_.column_order();
            if (order.size() == n) cslu_.set_preorder(order);
        }
        require(cslots == slot_lut_,
                "ac: complex sparse pattern diverged from the real one");
        cvals_work_.assign(vals_size_, 0.0);
        ac_kernel_ready_ = true;
    }
    if (!sparse_) ca_work_.reset(n);

    std::complex<double>* cw =
        sparse_ ? cvals_work_.data() : ca_work_.data();
    auto addc = [&](int site, std::complex<double> v) {
        if (site >= 0) cw[slot_lut_[static_cast<std::size_t>(site)]] += v;
    };

    // Sweep.  The G part is frequency-independent; per point the value
    // array is refreshed from it and only jwC is added on the capacitor
    // sites.  Above the sparse threshold every point after the first is a
    // pattern-reused refactor instead of a fresh O(n^3) factorization.
    const double decades = std::log10(spec.fstop / spec.fstart);
    const int total = std::max(
        2, static_cast<int>(decades * spec.points_per_decade + 0.5) + 1);
    std::vector<std::complex<double>> sol(n);
    for (int k = 0; k < total; ++k) {
        // The sweep is linear (no Newton iterations), so the wall-clock
        // budget needs its own per-point check here.
        check_budget();
        const double f =
            spec.fstart * std::pow(10.0, decades * k / (total - 1));
        const double w = 2.0 * M_PI * f;
        for (std::size_t i = 0; i < vals_size_; ++i)
            cw[i] = std::complex<double>(gv[i], 0.0);
        for (const CapInstance& cp : caps_) {
            const std::complex<double> jwc(0.0, w * cp.c);
            addc(cp.s_11, jwc);
            addc(cp.s_22, jwc);
            addc(cp.s_12, -jwc);
            addc(cp.s_21, -jwc);
        }
        if (sparse_) {
            obs::Span fsp(obs::Phase::Factor);
            const std::size_t before_full = cslu_.full_factors();
            const bool fok = cslu_.factor(cvals_work_);
            sync_sparse_timers();
            require(fok, "ac: singular system at f=" + std::to_string(f));
            if (cslu_.full_factors() > before_full) {
                ++stats_.sparse_full_factors;
            } else {
                ++stats_.sparse_refactors;
                fsp.set_phase(obs::Phase::Refactor);
            }
            fsp.end();
            obs::Span ssp(obs::Phase::Solve);
            sol = rhs;
            cslu_.solve(sol);
        } else {
            {
                obs::Span fsp(obs::Phase::Factor);
                require(clu_.factor(ca_work_),
                        "ac: singular system at f=" + std::to_string(f));
            }
            obs::Span ssp(obs::Phase::Solve);
            clu_.solve(rhs, sol);
        }
        ++stats_.lu_factorizations;
        res.append(f, std::vector<std::complex<double>>(
                          sol.begin(),
                          sol.begin() + static_cast<long>(n_nodes_)));
        ++stats_.ac_points;
        if (observer && !observer(f, res)) {
            stats_.ac_points_saved += static_cast<std::size_t>(total - k - 1);
            break;
        }
    }
    return res;
}

Waveforms Simulator::tran(const netlist::TranSpec& spec) {
    return tran(spec, StepObserver{});
}

Waveforms Simulator::tran(const netlist::TranSpec& spec,
                          const StepObserver& observer) {
    require(spec.tstep > 0 && spec.tstop > spec.tstart,
            "bad .tran parameters");
    begin_analysis();
    const std::size_t n = n_nodes_ + n_branches_;
    std::vector<double> x(n, 0.0);

    // Reset capacitor history (the same Simulator can be reused).
    for (CapInstance& c : caps_) {
        c.v_prev = 0.0;
        c.i_prev = 0.0;
    }
    for (std::size_t i = 0, ci = 0; i < ckt_.devices.size(); ++i) {
        const Device& d = ckt_.devices[i];
        if (d.kind != DeviceKind::Capacitor) continue;
        caps_[ci].v_prev = d.ic.value_or(0.0);
        ++ci;
    }

    // Initial point.
    if (opt_.uic) {
        // Start from all-zero node voltages (plus capacitor ICs recorded in
        // history).  Consistent for supply-ramp decks, which is how the
        // paper's experiment begins ("after the activation of the supply
        // voltage the simulation started").
    } else {
        // Solve the DC operating point (sources at their dc_value(), which
        // for PULSE/PWL/SIN equals the t=0 level on standard decks).
        // dc_op_impl: the transient's analysis window and budgets, armed
        // by begin_analysis() above, span this internal solve.
        DcResult dc = dc_op_impl(nullptr);
        require(dc.converged, "transient: initial operating point failed");
        for (std::size_t i = 0; i < n_nodes_; ++i)
            x[i] = dc.voltages.at(node_names_[i]);
        // Seed capacitor history with the operating point.
        for (CapInstance& c : caps_) {
            c.v_prev = volt(x, c.n1) - volt(x, c.n2);
            c.i_prev = 0.0;
        }
    }

    Waveforms wf;
    for (const std::string& nn : node_names_) wf.add_trace(nn);
    // Branch currents of the voltage sources, for supply-current (IDDQ
    // style) observation: trace "i(<source name>)".
    for (std::size_t b = 0; b < n_branches_; ++b)
        wf.add_trace("i(" + ckt_.devices[vsource_devs_[b]].name + ")");

    auto record = [&](double t) {
        row_buf_.assign(x.begin(), x.end());
        wf.append(t, row_buf_);
    };

    record(spec.tstart);

    const auto steps = static_cast<std::size_t>(
        std::llround((spec.tstop - spec.tstart) / spec.tstep));
    require(steps > 0, "transient: zero steps");

    if (observer && !observer(spec.tstart, wf)) {
        stats_.steps_saved += steps;
        return wf;
    }

    // Save method so the first sub-step can use BE bootstrap under TRAP.
    const Method user_method = opt_.method;
    bool first_substep = true;

    // Integrate exactly one grid interval ending at t_target with the
    // fixed-grid cut loop: the full interval first, halved internally when
    // NR fails.  Commits x and the capacitor history.
    auto advance_interval = [&](double tc, double t_target) {
        while (tc < t_target - 1e-18 * std::max(1.0, t_target)) {
            double dt = t_target - tc;
            int cuts = 0;
            for (;;) {
                if (first_substep && user_method == Method::Trapezoidal)
                    opt_.method = Method::BackwardEuler;
                x_try_ = x;
                const bool ok = newton(x_try_, dt, tc + dt, /*dc=*/false, 1.0,
                                       0.0, opt_.max_nr);
                if (ok) {
                    x = x_try_;
                    update_cap_history(x, dt);
                    opt_.method = user_method;
                    first_substep = false;
                    tc += dt;
                    ++stats_.tran_steps;
                    break;
                }
                opt_.method = user_method;
                ++cuts;
                ++stats_.step_cuts;
                require(cuts <= opt_.max_step_cuts,
                        "transient failed to converge at t=" +
                            std::to_string(tc + dt));
                dt *= 0.5;
            }
        }
    };

    // A macro step samples every source only at its endpoint, so it is
    // valid only when each independent source is linear across the whole
    // stride -- otherwise a stimulus feature (a pulse edge inside the
    // stride) would be silently integrated away even though the LTE test
    // on the endpoint passes.  Checked *before* the Newton solve: source
    // evaluation is cheap, a wasted macro solve is not.
    auto sources_linear = [&](double t0, double t1, std::size_t s) {
        for (const Device& d : ckt_.devices) {
            if (d.kind != DeviceKind::VSource &&
                d.kind != DeviceKind::ISource)
                continue;
            const double v0 = d.source.value_at(t0);
            const double v1 = d.source.value_at(t1);
            const double tol =
                opt_.lte_tol *
                std::max({1.0, std::fabs(v0), std::fabs(v1)});
            for (std::size_t j = 1; j < s; ++j) {
                const double tj =
                    t0 + (t1 - t0) * static_cast<double>(j) /
                             static_cast<double>(s);
                const double lin = v0 + (v1 - v0) *
                                            static_cast<double>(j) /
                                            static_cast<double>(s);
                if (std::fabs(d.source.value_at(tj) - lin) > tol)
                    return false;
            }
        }
        return true;
    };

    // Adaptive predictor state: the previous accepted grid solution and the
    // spacing to it.  The first interval always runs fixed-grid (there is
    // no history to predict from, and it carries the BE bootstrap).
    std::vector<double> x_prev;
    double h_prev = 0.0;
    bool have_prev = false;
    std::size_t stride = 1;
    const std::size_t max_stride =
        (opt_.adaptive && opt_.max_stride > 1)
            ? static_cast<std::size_t>(opt_.max_stride)
            : 1;

    std::size_t k = 0;          // completed grid intervals
    double t_k = spec.tstart;   // time of the last recorded grid sample
    while (k < steps) {
        std::size_t s = std::min(stride, steps - k);
        double ratio = -1.0;  // LTE ratio of the accepted step, if known
        bool macro_done = false;
        std::vector<double> x_old = x;  // solution at t_k (predictor history)

        // Multi-interval candidate steps, halved on NR failure or LTE
        // rejection; s == 1 falls through to the fixed-grid path below.
        while (s > 1 && have_prev) {
            const double t_target =
                spec.tstart + static_cast<double>(k + s) * spec.tstep;
            const double dt = t_target - t_k;
            if (!sources_linear(t_k, t_target, s)) {
                s /= 2;
                continue;
            }
            // Seed Newton with the linear predictor: on the quiescent
            // stretches where large strides are attempted it is already
            // near the solution, so the macro solve converges in a couple
            // of iterations.
            x_try_ = x;
            const double slope = dt / h_prev;
            for (std::size_t i = 0; i < n; ++i)
                x_try_[i] += (x[i] - x_prev[i]) * slope;
            if (newton(x_try_, dt, t_target, /*dc=*/false, 1.0, 0.0,
                       opt_.max_nr)) {
                ratio = lte_ratio(x_prev, h_prev, x, x_try_, dt);
                if (ratio <= 1.0) {
                    // Accepted: the LTE bound certifies the solution is
                    // linear across the stride within tolerance, so the
                    // interior grid samples are filled by interpolation.
                    for (std::size_t j = 1; j < s; ++j) {
                        const double tj = spec.tstart +
                                          static_cast<double>(k + j) *
                                              spec.tstep;
                        const double frac = static_cast<double>(j) /
                                            static_cast<double>(s);
                        row_buf_.resize(n);
                        for (std::size_t i = 0; i < n; ++i)
                            row_buf_[i] = x[i] + frac * (x_try_[i] - x[i]);
                        wf.append(tj, row_buf_);
                        ++stats_.grid_points_interpolated;
                        if (observer && !observer(tj, wf)) {
                            stats_.steps_saved += steps - (k + j);
                            return wf;
                        }
                    }
                    x = x_try_;
                    update_cap_history(x, dt);
                    ++stats_.tran_steps;
                    macro_done = true;
                    break;
                }
                ++stats_.lte_rejections;
            } else {
                ++stats_.step_cuts;
            }
            s /= 2;
        }

        double t_target;
        if (macro_done) {
            t_target = spec.tstart + static_cast<double>(k + s) * spec.tstep;
        } else {
            s = 1;
            t_target = spec.tstart + static_cast<double>(k + 1) * spec.tstep;
            advance_interval(t_k, t_target);
            // A-posteriori LTE of the fixed-grid step: lets the stride grow
            // out of quiescence without speculative (wasted) macro solves.
            if (opt_.adaptive && have_prev)
                ratio = lte_ratio(x_prev, h_prev, x_old, x, t_target - t_k);
        }

        record(t_target);
        if (observer && !observer(t_target, wf)) {
            stats_.steps_saved += steps - (k + s);
            return wf;
        }

        // Predictor history and stride control for the next step.
        x_prev = std::move(x_old);
        h_prev = t_target - t_k;
        have_prev = true;
        t_k = t_target;
        k += s;
        if (opt_.adaptive) {
            if (ratio >= 0.0 && ratio < 0.25)
                stride = std::min(s * 2, max_stride);
            else
                stride = std::max<std::size_t>(s, 1);
        }
    }
    return wf;
}

} // namespace catlift::spice
