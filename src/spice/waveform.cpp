#include "spice/waveform.h"

#include <algorithm>
#include <sstream>

namespace catlift::spice {

void Waveforms::add_trace(const std::string& name) {
    require(index_.count(name) == 0, "duplicate trace " + name);
    index_[name] = names_.size();
    names_.push_back(name);
    data_.emplace_back();
}

void Waveforms::append(double t, const std::vector<double>& values) {
    require(values.size() == names_.size(),
            "Waveforms::append: value count mismatch");
    require(time_.empty() || t >= time_.back(),
            "Waveforms::append: time must be monotonic");
    time_.push_back(t);
    for (std::size_t i = 0; i < values.size(); ++i)
        data_[i].push_back(values[i]);
}

const std::vector<double>& Waveforms::trace(const std::string& name) const {
    auto it = index_.find(name);
    require(it != index_.end(), "no trace named " + name);
    return data_[it->second];
}

std::vector<std::string> Waveforms::trace_names() const { return names_; }

double Waveforms::at(const std::string& name, double t) const {
    const auto& y = trace(name);
    require(!time_.empty(), "empty waveform");
    if (t <= time_.front()) return y.front();
    if (t >= time_.back()) return y.back();
    // Binary search for the bracketing interval.
    auto it = std::upper_bound(time_.begin(), time_.end(), t);
    const std::size_t i = static_cast<std::size_t>(it - time_.begin());
    const double t0 = time_[i - 1], t1 = time_[i];
    const double y0 = y[i - 1], y1 = y[i];
    if (t1 == t0) return y1;
    return y0 + (y1 - y0) * (t - t0) / (t1 - t0);
}

double Waveforms::min_of(const std::string& name) const {
    const auto& y = trace(name);
    require(!y.empty(), "empty trace " + name);
    return *std::min_element(y.begin(), y.end());
}

double Waveforms::max_of(const std::string& name) const {
    const auto& y = trace(name);
    require(!y.empty(), "empty trace " + name);
    return *std::max_element(y.begin(), y.end());
}

std::string Waveforms::to_csv(const std::vector<std::string>& names) const {
    const std::vector<std::string> cols = names.empty() ? names_ : names;
    std::ostringstream os;
    os << "time";
    for (const auto& n : cols) os << ',' << n;
    os << '\n';
    for (std::size_t i = 0; i < time_.size(); ++i) {
        os << time_[i];
        for (const auto& n : cols) os << ',' << trace(n)[i];
        os << '\n';
    }
    return os.str();
}

} // namespace catlift::spice
