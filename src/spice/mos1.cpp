#include "spice/mos1.h"

#include <algorithm>
#include <cmath>

namespace catlift::spice {

Mos1Point mos1_eval_normalized(const netlist::MosModel& m, double w, double l,
                               double vgs, double vds) {
    require(vds >= 0.0, "mos1_eval_normalized: vds must be >= 0");
    const double vth = std::fabs(m.vto);
    const double beta = m.kp * (w / l);
    const double vov = vgs - vth;

    Mos1Point p;
    if (vov <= 0.0) {
        p.region = 0;  // cutoff
        return p;
    }
    const double clm = 1.0 + m.lambda * vds;
    if (vds < vov) {
        // Triode.
        p.id = beta * (vov * vds - 0.5 * vds * vds) * clm;
        p.gm = beta * vds * clm;
        p.gds = beta * ((vov - vds) * clm +
                        (vov * vds - 0.5 * vds * vds) * m.lambda);
        p.region = 1;
    } else {
        // Saturation.
        p.id = 0.5 * beta * vov * vov * clm;
        p.gm = beta * vov * clm;
        p.gds = 0.5 * beta * vov * vov * m.lambda;
        p.region = 2;
    }
    p.gm = std::max(p.gm, 0.0);
    p.gds = std::max(p.gds, 0.0);
    return p;
}

double mos1_drain_current(const netlist::MosModel& m, double w, double l,
                          double vd, double vg, double vs) {
    const double sign = m.is_nmos ? 1.0 : -1.0;
    double vdn = sign * vd, vgn = sign * vg, vsn = sign * vs;
    bool swapped = false;
    if (vdn < vsn) {
        std::swap(vdn, vsn);
        swapped = true;
    }
    const Mos1Point p = mos1_eval_normalized(m, w, l, vgn - vsn, vdn - vsn);
    double id = p.id;
    if (swapped) id = -id;  // current reverses when roles are exchanged
    return sign * id;       // undo PMOS reflection
}

MosCaps mos1_caps(const netlist::MosModel& m, double w, double l) {
    const double cox = m.cox_per_area() * w * l;
    MosCaps c;
    c.cgs = 0.5 * cox + m.cgso * w;
    c.cgd = 0.5 * cox + m.cgdo * w;
    return c;
}

} // namespace catlift::spice
