// catlift/spice/engine.h
//
// The kernel analogue simulator.  The paper's AnaFAULT drives ELDO; this
// engine plays that role: it accepts a netlist::Circuit, computes a DC
// operating point, a DC transfer sweep, a small-signal AC sweep, or a
// transient response.
//
// Numerics
// --------
//  * Modified Nodal Analysis: one unknown per non-ground node plus one
//    branch current per voltage source.
//  * Damped Newton-Raphson with per-iteration voltage limiting for the
//    nonlinear MOS devices.
//  * DC operating point: plain NR, then gmin stepping, then source stepping
//    (in that order) until one converges.  A solve may be warm-started from
//    a nearby solution (the previous level of a DC sweep, the nominal
//    operating point of a fault screen); plain NR from the warm point is
//    tried first and the cold ladder remains the fallback.
//  * Transient: backward-Euler or trapezoidal companion models over the
//    user sample grid t = tstart..tstop step tstep.  In fixed-grid mode
//    (`adaptive = false`) every grid interval is integrated with one
//    companion step, halved internally when NR fails -- the paper's
//    experiment is a fixed "400 step transient fault simulation", which
//    maps to this mode.  In adaptive mode the kernel controls the step:
//    the local truncation error of each candidate step is estimated from
//    the companion history (the solution is compared against a linear
//    predictor extrapolated through the two previous accepted points --
//    the predictor error is a divided-difference curvature estimate, the
//    standard LTE proxy).  Steps whose LTE ratio exceeds 1 are rejected
//    and halved; well-predicted steps let the stride grow geometrically up
//    to `max_stride` grid intervals, so quiescent tails integrate in a
//    handful of solves.  A stride is only attempted when every independent
//    source is linear across it (sources are sampled at the stride
//    endpoint, so a pulse edge inside a stride would otherwise be
//    integrated away); around stimulus discontinuities the kernel falls
//    back to the grid.  Strides are bounded *by the sample grid*: every
//    accepted step lands exactly on a grid point and skipped grid samples
//    are filled by linear interpolation (valid precisely because the LTE
//    test bounds the deviation from linearity), so the returned Waveforms
//    carry the same time axis as a fixed-grid run and per-point observers
//    fire for every grid sample in order.
//  * Every node carries gmin to ground; transient adds cmin so that nodes
//    isolated by open-fault injection stay well-posed (exactly the
//    situation AnaFAULT creates with 100 MOhm opens and split nodes).
//
// Kernel architecture (stamp split / sparse / bypass)
// ---------------------------------------------------
// The Jacobian is split once, structurally, at construction:
//  * static part  -- resistors, source incidence, gmin and the capacitor
//    companion conductances.  Rebuilt only when the companion stepsize,
//    integration method or stepping scalars change, never per Newton
//    iteration.
//  * dynamic part -- the MOS linearised companions.  Written per Newton
//    iteration through precomputed stamp-pointer lists on top of a memcpy
//    of the static values; no device-loop node lookups in the hot path.
// The linear solve runs on one of two backends behind the same stamp
// slots: dense LU (matrix.h) below SimOptions::sparse_threshold unknowns,
// sparse LU (sparse.h) above it -- a one-time analysis (minimum-degree
// preordering + Gilbert-Peierls fill discovery on the Amd path, dynamic
// Markowitz ordering on the historical one), every later factorization a
// pattern-reused supernodal numeric refactor.  A campaign hands every
// faulty variant the nominal circuit's elimination order through
// SimOptions::symbolic_cache so the one-time analysis runs once per
// campaign instead of once per fault.  The AC sweep shares the machinery
// with complex values: the G pattern is stamped once, per frequency only
// the capacitor cells change, and above the threshold each point is a
// sparse refactor instead of a dense O(n^3) factorization.  All Newton
// workspaces (matrix values, rhs, solution, solver) are Simulator-owned
// and preallocated: the hot path performs no heap allocation.  The
// modified-Newton bypass is *per device*: a MOS whose terminals stayed
// within device_bypass_tol of its linearization replays its cached
// companion stamp instead of being re-evaluated, and when every device is
// clean the previous factorization is reused outright
// (SimStats::bypass_solves), which collapses quiescent transient tails to
// two triangular solves per step.
//
// Observers
// ---------
// Every sweeping analysis accepts a per-point observer so a caller (the
// batch fault-simulation engine) can stop the analysis the moment it has
// learned what it needs -- ERASER-style execution-redundancy trimming
// inside the kernel rather than around it:
//   * tran:     StepObserver   -- per accepted user-grid sample
//   * ac:       AcPointObserver -- per frequency point, mid-sweep
//   * dc_sweep: DcSweepObserver -- per level, between warm-started solves

#pragma once

#include "netlist/netlist.h"
#include "spice/ac.h"
#include "spice/matrix.h"
#include "spice/sparse.h"
#include "spice/symbolic_cache.h"
#include "spice/waveform.h"

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace catlift::spice {

/// Integration method for transient analysis.
enum class Method { BackwardEuler, Trapezoidal };

struct SimOptions {
    double gmin = 1e-12;    ///< conductance to ground on every node [S]
    double cmin = 1e-15;    ///< transient-only cap to ground per node [F]
    double abstol = 1e-9;   ///< current convergence floor [A]
    double vntol = 1e-6;    ///< voltage convergence floor [V]
    double reltol = 1e-3;   ///< relative convergence tolerance
    double dv_limit = 1.0;  ///< max voltage change per NR iteration [V]
    int max_nr = 150;       ///< NR iteration cap per solve
    int max_step_cuts = 10; ///< transient: halvings of the step on failure
    Method method = Method::Trapezoidal;
    bool uic = false;       ///< transient: skip DC OP, start from 0 / .ic

    // -- adaptive time stepping ---------------------------------------------
    /// LTE-controlled stride growth over the sample grid (see file header).
    /// Off by default for the raw kernel; fault campaigns turn it on.
    bool adaptive = false;
    /// Relative LTE acceptance tolerance: a candidate step is accepted when
    /// the predictor error on every node stays below
    /// lte_tol * max(1 V, |v|); growth is attempted below a quarter of it.
    double lte_tol = 5e-3;
    /// Largest number of grid intervals one adaptive step may span.
    int max_stride = 64;

    // -- kernel selection ---------------------------------------------------
    /// Unknown count at or above which the sparse kernel replaces dense
    /// LU.  0 forces sparse everywhere (tests use this); a huge value
    /// forces dense.  The default keeps the paper's tens-of-nodes
    /// circuits on the dense path, where its constant factors win.
    std::size_t sparse_threshold = 64;
    /// Ablation switch for benches: false rebuilds the complete Jacobian
    /// (static part included) on every Newton iteration, reproducing the
    /// seed kernel's work profile so speedups are measured against it
    /// within one run.  Always leave true in production.
    // manifest-exempt: ablation switch only redistributes Jacobian
    // assembly work; the assembled matrix and thus every waveform and
    // verdict are identical either way (pinned by kernel_test.cpp).
    bool incremental = true;
    /// Modified-Newton Jacobian bypass, *per device*: a MOS whose terminal
    /// voltages all moved less than bypass_tol * max(1 V, |v|) since its
    /// linearization keeps its cached companion stamp instead of being
    /// re-evaluated (SimStats::device_stamp_skips); when every device is
    /// clean and the companion stepsize is unchanged the previous
    /// factorization is reused outright and the solve is two triangular
    /// substitutions (SimStats::bypass_solves).  Each converged solution
    /// is by construction within bypass_tol of every device's
    /// linearization point, so detection verdicts are unchanged at the
    /// default tolerance (pinned by the full-VCO-campaign identity test in
    /// tests/kernel_test.cpp and the per-device OTA identity test in
    /// tests/symbolic_test.cpp).
    bool bypass = true;
    double bypass_tol = 1e-7;
    /// Movement tolerance of the *per-device* stamp reuse, deliberately
    /// tighter than bypass_tol: a stale device linearization persists for
    /// as long as the device sits still, so its error accumulates where
    /// the whole-solve bypass' cannot (the factorization reuse lasts one
    /// solve).  At 0 a device is replayed only when its terminals are
    /// *bitwise* unchanged -- the cached stamp then equals a fresh
    /// evaluation bit for bit, so waveforms are untouched; fault campaigns
    /// default to that (CampaignOptions), because the VCO's margin-rider
    /// faults ride the oscillator's truncation error and flip under any
    /// nonzero device staleness (measured: non-monotonically across
    /// 1e-12..1e-10).  The raw-kernel default 1e-9 trades that last digit
    /// for skipping the model evaluation of every settled device.
    double device_bypass_tol = 1e-9;
    /// First-factorization strategy of the sparse backend: Amd (a
    /// fill-reducing minimum-degree preordering + Gilbert-Peierls
    /// factorization, the path that scales past ~1k unknowns and can adopt
    /// a campaign-shared symbolic cache) or Markowitz (the historical
    /// dynamic ordering, kept for ablation benches and as the automatic
    /// fallback when an order-restricted pivot goes singular).
    SparseOrdering ordering = SparseOrdering::Amd;
    /// Campaign-shared symbolic analysis (see spice/symbolic_cache.h):
    /// when set and the sparse Amd backend is active, the kernel adopts
    /// the cached elimination order -- nominal unknowns keep their cached
    /// rank, injected unknowns are appended -- instead of running minimum
    /// degree itself.  Campaigns harvest it from the nominal simulator
    /// (Simulator::symbolic_cache()) and hand it to every faulty variant.
    // manifest-exempt: a runtime acceleration handle, not a knob -- the
    // adopted elimination order changes operation count, not solutions
    // (identity pinned per-device in tests/symbolic_test.cpp), and the
    // pointer value itself is meaningless across processes.
    std::shared_ptr<const SymbolicCache> symbolic_cache;

    // -- per-analysis execution budgets (0 = unlimited) ---------------------
    // A pathological faulty circuit must not grind a campaign worker
    // forever: max_nr bounds one Newton solve, but nothing above it bounds
    // the DC strategy ladder, the gmin/source stepping loops or a
    // transient that limps through millions of tiny steps.  Each budget
    // covers one analysis (a tran, an AC sweep, or one dc_op with its
    // whole strategy ladder); exhaustion throws the typed BudgetExceeded
    // below -- a catchable, attributable failure instead of a hang.
    /// Wall-clock deadline per analysis [s] (checked every NR iteration).
    double max_wall_seconds = 0.0;
    /// Total NR iterations per analysis, all solves and strategies summed.
    std::size_t max_nr_total = 0;
    /// Companion steps per transient analysis (accepted solves, not grid
    /// samples: an adaptive stride counts once, like SimStats::tran_steps).
    std::size_t max_tran_steps = 0;
};

/// Typed per-analysis budget exhaustion (SimOptions::max_wall_seconds /
/// max_nr_total / max_tran_steps).  Derives from catlift::Error so every
/// existing per-fault catch already contains it; campaigns distinguish it
/// to drive the retry/degradation ladder.
class BudgetExceeded : public Error {
public:
    explicit BudgetExceeded(const std::string& what) : Error(what) {}
};

/// Counters for performance reporting (the source-model vs resistor-model
/// runtime comparison of the paper reads these).
struct SimStats {
    std::size_t matrix_size = 0;
    std::size_t nr_iterations = 0;
    std::size_t lu_factorizations = 0;
    /// Companion steps actually integrated (one per accepted Newton solve;
    /// an adaptive step spanning k grid intervals counts once).
    std::size_t tran_steps = 0;
    std::size_t step_cuts = 0;
    /// User-grid steps never integrated because a step observer stopped the
    /// transient early (the batch engine's ERASER-style trimmed redundancy).
    std::size_t steps_saved = 0;
    /// Adaptive mode: grid samples filled by interpolation instead of a
    /// solve (the LTE controller's savings), and candidate steps rejected
    /// because the LTE estimate exceeded tolerance.
    std::size_t grid_points_interpolated = 0;
    std::size_t lte_rejections = 0;
    /// AC sweep: frequency points solved, and points skipped because an
    /// AcPointObserver stopped the sweep.
    std::size_t ac_points = 0;
    std::size_t ac_points_saved = 0;
    /// DC: solves that converged directly from a warm start, and NR
    /// iterations saved by warm starting relative to this simulator's most
    /// recent cold solve of the same circuit topology.
    std::size_t warm_start_solves = 0;
    std::size_t nr_saved_warm = 0;
    /// Newton solves that reused the previous factorization outright
    /// (modified-Newton bypass, SimOptions::bypass).
    std::size_t bypass_solves = 0;
    /// Sparse kernel: full factorizations (ordering + fill discovery)
    /// vs numeric refactorizations that replayed the recorded pattern.
    std::size_t sparse_full_factors = 0;
    std::size_t sparse_refactors = 0;
    /// Per-device bypass: MOS companion evaluations actually performed vs
    /// devices whose cached linearization was replayed because their
    /// terminals moved less than bypass_tol.
    std::size_t device_stamps = 0;
    std::size_t device_stamp_skips = 0;
    /// Kernel builds that adopted a campaign-shared symbolic cache
    /// (SimOptions::symbolic_cache) instead of running their own ordering.
    std::size_t symbolic_cache_hits = 0;
    /// Sparse kernel wall-time split: one-time analyses (ordering + fill
    /// discovery, every full factorization) vs pattern-reused numeric
    /// refactorizations, real and complex backends combined.
    double ordering_seconds = 0.0;
    double numeric_seconds = 0.0;
};

/// Per-analysis counter window: every counter of `now` minus its value in
/// `base` (sizes and other non-monotonic fields are taken from `now`).
/// Simulator snapshots its cumulative stats at the top of each tran/AC
/// analysis so Simulator::analysis_stats() can report that analysis alone
/// even when one simulator runs a transient and then an AC sweep.
SimStats stats_delta(const SimStats& now, const SimStats& base);

struct DcResult {
    bool converged = false;
    /// NR iterations spent on this solve (all strategies attempted).
    int iterations = 0;
    /// Strategy that finally converged: "warm", "nr", "gmin", "source".
    std::string strategy;
    std::map<std::string, double> voltages;
};

/// Observer invoked after every accepted user-grid sample of a transient
/// analysis: receives the sample time and the waveforms recorded so far
/// (the new sample is the last row).  Returning false stops the analysis
/// at that sample; the truncated waveforms are returned and the skipped
/// user-grid steps are counted in SimStats::steps_saved.  Fault campaigns
/// use this to abort a faulty run at the first confirmed detection.
using StepObserver = std::function<bool(double t, const Waveforms& wf)>;

/// Observer invoked after every solved frequency point of an AC sweep:
/// receives the point's frequency and the partial AcResult (the new point
/// is the last one).  Returning false stops the sweep; the remaining
/// points are counted in SimStats::ac_points_saved.  The AC fault campaign
/// uses this to abort a faulty sweep at the first dB-tolerance violation.
using AcPointObserver = std::function<bool(double f, const AcResult& partial)>;

/// Observer invoked after every level of a DC transfer sweep: receives the
/// level and its DcResult.  Returning false stops the sweep; dc_sweep
/// returns the levels solved so far.
using DcSweepObserver = std::function<bool(double level, const DcResult& r)>;

/// DC transfer sweep: re-solve the operating point for each level of one
/// source.  A single simulator is reused and every level after the first
/// is warm-started from the previous level's solution (iterations saved
/// are counted in SimStats::nr_saved_warm, readable via `stats`).  Returns
/// one DcResult per level, in order; a stopping observer truncates the
/// returned vector at the level it rejected.
std::vector<DcResult> dc_sweep(const netlist::Circuit& ckt,
                               const std::string& source,
                               const std::vector<double>& levels,
                               const SimOptions& opt = {},
                               const DcSweepObserver& observer = {},
                               SimStats* stats = nullptr);

/// One-shot simulator bound to a circuit.  The circuit is copied: the
/// simulator stays valid independently of the caller's object lifetime
/// (fault campaigns hand in short-lived mutated circuits).
class Simulator {
public:
    explicit Simulator(netlist::Circuit ckt, SimOptions opt = {});

    /// DC operating point (cold start).
    DcResult dc_op();

    /// DC operating point warm-started from a nearby solution (node name ->
    /// voltage; missing nodes start at 0).  Plain NR from the warm point is
    /// tried first; on failure the cold strategy ladder runs unchanged.
    DcResult dc_op(const std::map<std::string, double>& initial);

    /// Overwrite the DC value of one independent source (the level knob of
    /// a warm-started DC sweep).  Throws if `name` is not a V/I source.
    void set_source_dc(const std::string& name, double value);

    /// Transient analysis.  Returns waveforms for every node (plus the
    /// requested traces), sampled on the user grid t = tstart..tstop step
    /// tstep.  Throws catlift::Error if the analysis cannot proceed.
    Waveforms tran(const netlist::TranSpec& spec);

    /// Transient analysis with a per-accepted-step observer (may be empty).
    Waveforms tran(const netlist::TranSpec& spec,
                   const StepObserver& observer);

    /// Convenience: run the circuit's own .tran card.
    Waveforms tran();

    /// Small-signal AC analysis: linearise at the DC operating point and
    /// sweep the frequency axis logarithmically.  Sources participate with
    /// their `ac_mag`.  Throws if the operating point cannot be found.
    AcResult ac(const AcSpec& spec);

    /// AC analysis with a per-frequency-point observer (may be empty).
    AcResult ac(const AcSpec& spec, const AcPointObserver& observer);

    /// Convenience: run the circuit's own .ac card.
    AcResult ac();

    const SimStats& stats() const { return stats_; }

    /// Counters of the most recent tran/AC analysis alone.  stats() keeps
    /// accumulating across analyses (campaign aggregation relies on it);
    /// this is the per-analysis window so a tran-then-AC run on one
    /// simulator reports each analysis' own sparse/bypass numbers.  An AC
    /// analysis' window includes the operating-point solve it performs
    /// internally.
    SimStats analysis_stats() const { return stats_delta(stats_, analysis_base_); }

    /// Number of MNA unknowns (nodes + voltage-source branches).  The source
    /// fault model grows this; the resistor model does not.
    std::size_t unknowns() const { return n_nodes_ + n_branches_; }

    /// Harvest the campaign-shared symbolic analysis from this simulator:
    /// the elimination rank of every unknown under the recorded sparse
    /// pivot order, keyed by name.  Returns nullptr when the kernel is
    /// dense or no sparse factorization has happened yet (run the nominal
    /// analysis first).  The cache is immutable; hand it to the faulty
    /// variants through SimOptions::symbolic_cache.
    std::shared_ptr<const SymbolicCache> symbolic_cache() const;

private:
    struct MosInstance {
        std::size_t dev;        // index into circuit devices
        int d, g, s;            // node indices (-1 = ground)
        double w, l;
        const netlist::MosModel* model;
        // Stamp sites (indices into sites_/slot_lut_; -1 = grounded pair):
        // the 3x3 conductance block minus the gate row, which never
        // receives current.
        int s_dd = -1, s_dg = -1, s_ds = -1;
        int s_sd = -1, s_sg = -1, s_ss = -1;
        // Cached linearization (per-device bypass): the stamp values this
        // device contributed last time it was evaluated, with the swap
        // (reverse operation) already resolved into effective rows/sites,
        // and the terminal voltages they were computed at.  While every
        // terminal stays within bypass_tol of the snapshot the cached
        // values are replayed in the same add order -- no model
        // evaluation; a fresh evaluation refreshes the cache.
        bool lin_valid = false;
        double lin_vd = 0.0, lin_vg = 0.0, lin_vs = 0.0;
        int c_dd = -1, c_dg = -1, c_ds = -1;  // effective drain-row sites
        int c_ss = -1, c_sg = -1, c_sd = -1;  // effective source-row sites
        int ed = -1, es = -1;                 // effective drain/source rows
        double g_dd = 0.0, g_dg = 0.0, g_ds = 0.0;
        double g_ss = 0.0, g_sg = 0.0, g_sd = 0.0;
        double ieq = 0.0;
    };
    struct CapInstance {
        int n1, n2;     // node indices (-1 = ground)
        double c;
        double v_prev = 0.0;  // branch voltage at previous accepted step
        double i_prev = 0.0;  // branch current at previous accepted step
        int s_11 = -1, s_22 = -1, s_12 = -1, s_21 = -1;  // geq / jwC sites
    };
    struct ResInstance {
        int n1, n2;
        double g;
        int s_11 = -1, s_22 = -1, s_12 = -1, s_21 = -1;
    };
    struct ISrcInstance {
        std::size_t dev;
        int np, nm;
    };
    struct VSrcInstance {
        std::size_t dev;
        int np, nm;
        std::size_t row;  // branch row index (n_nodes_ + branch)
        int s_pb = -1, s_bp = -1, s_mb = -1, s_bm = -1;  // +/-1 incidence
    };

    /// Key of the cached static stamp: everything the static value array
    /// depends on besides topology.
    struct StaticKey {
        bool valid = false;
        bool dc = false;
        double h = 0.0;
        double extra_gmin = 0.0;
        Method method = Method::Trapezoidal;
        bool matches(bool dc_, double h_, double eg, Method m) const {
            return valid && dc == dc_ && h == h_ && extra_gmin == eg &&
                   method == m;
        }
    };

    int node_id(const std::string& name) const;  // -1 for ground
    double volt(const std::vector<double>& x, int node) const {
        return node < 0 ? 0.0 : x[static_cast<std::size_t>(node)];
    }

    /// Register a stamp site (row, col); returns its site index, or -1 if
    /// either index is negative (grounded terminal).
    int add_site(int r, int c);
    /// One-time structural pass: resolve every device's stamp sites, pick
    /// the dense/sparse backend, and build the slot lookup table.
    void build_kernel();

    /// Rebuild the static value array (resistors, source incidence, gmin,
    /// capacitor geq at stepsize h) if the key changed since the last
    /// build.  Invalidates the bypass linearization on rebuild.
    void ensure_static(bool dc, double h, double extra_gmin);
    /// Per-solve right-hand side base: independent sources at (t,
    /// src_scale) and capacitor companion history currents.
    void build_rhs_base(bool dc, double h, double t, double src_scale);
    /// Per-iteration dynamic stamp: memcpy static -> work values, then the
    /// MOS companions at candidate x (matrix part into the work array, the
    /// companion currents into rhs_mos_).  Devices whose terminals stayed
    /// within bypass_tol of their cached linearization replay the cached
    /// stamp instead of re-evaluating (per-device bypass); `fresh` forces
    /// every device to re-evaluate (the AC setup needs the exact Jacobian
    /// at the operating point).
    void stamp_dynamic(const std::vector<double>& x, bool fresh = false);
    /// True when this device's terminals moved beyond `tol` since its
    /// cached linearization.
    bool device_moved(const MosInstance& m, const std::vector<double>& x,
                      double tol) const;
    /// True when the bypass conditions hold at candidate x (see
    /// SimOptions::bypass): valid factorization, unchanged static key, and
    /// an empty dirty-device set.
    bool can_bypass(const std::vector<double>& x) const;
    /// Drop every device's cached linearization (forces a full re-stamp).
    void invalidate_device_stamps();
    /// Elimination order the symbolic cache implies for this circuit's
    /// unknowns.  Empty -- meaning the kernel runs its own ordering --
    /// when the cache covers at most half of the unknowns (a cache from a
    /// different circuit must not degrade the ordering to index order).
    std::vector<int> cache_order() const;
    /// Name of MNA unknown i, the symbolic-cache key.
    std::string unknown_name(std::size_t i) const;
    /// Copy the sparse backends' time split into stats_.
    void sync_sparse_timers();
    /// Snapshot stats_ as the base of a new analysis window and arm the
    /// per-analysis execution budgets against it.
    void begin_analysis();
    /// Throw BudgetExceeded when any armed budget is exhausted relative to
    /// the current analysis window.  Called once per NR iteration (which
    /// covers the wall clock everywhere a solve loops) and once per
    /// accepted transient step; a no-op bool test when budgets are off.
    void check_budget();
    /// Factor the work values on the active backend.
    bool factor_work();
    /// Solve the factored system for rhs_ into x_new_.
    void solve_work();

    /// Newton loop at fixed (h, t).  Returns true on convergence; x is
    /// updated in place.
    bool newton(std::vector<double>& x, double h, double t, bool dc,
                double src_scale, double extra_gmin, int max_iter);

    /// Shared DC solve: warm NR first when `warm` is non-null, then the
    /// cold strategy ladder.
    DcResult dc_op_impl(const std::vector<double>* warm);

    /// Worst-node LTE ratio of a candidate step x_old -> x_new over dt,
    /// against the linear predictor through (x_prev, x_old) spaced h_prev
    /// apart.  <= 1 accepts; < 1/4 lets the stride grow.
    double lte_ratio(const std::vector<double>& x_prev, double h_prev,
                     const std::vector<double>& x_old,
                     const std::vector<double>& x_new, double dt) const;

    /// Commit capacitor history after an accepted transient step.
    void update_cap_history(const std::vector<double>& x, double h);

    netlist::Circuit ckt_;  ///< owned copy (see constructor note)
    SimOptions opt_;
    SimStats stats_;
    /// NR iterations of the most recent cold DC solve; the baseline that
    /// values warm-started solves (SimStats::nr_saved_warm).
    std::size_t last_cold_nr_ = 0;

    std::vector<std::string> node_names_;           // index -> name
    std::map<std::string, std::size_t> node_index_;  // name -> index
    std::size_t n_nodes_ = 0;
    std::size_t n_branches_ = 0;                     // V-source currents
    std::vector<std::size_t> vsource_devs_;          // device idx per branch
    std::vector<MosInstance> mos_;
    mutable std::vector<CapInstance> caps_;  // history mutated across steps
    std::vector<ResInstance> res_;
    std::vector<ISrcInstance> isrc_;
    std::vector<VSrcInstance> vsrc_;

    // -- kernel (stamp split + backends), built once by build_kernel() ------
    bool sparse_ = false;              ///< backend: sparse above threshold
    std::vector<std::pair<int, int>> sites_;  ///< stamp positions (r, c)
    std::vector<int> slot_lut_;        ///< site -> value-array slot
    std::size_t vals_size_ = 0;        ///< dense: n*n; sparse: pattern nnz
    std::vector<int> preorder_cols_;   ///< symbolic-cache elimination order

    Matrix a_static_, a_work_;         ///< dense backend value arrays
    LuSolver lu_;
    std::vector<double> svals_static_, svals_work_;  ///< sparse backend
    SparseLu<double> slu_;

    StaticKey static_key_;             ///< what the static array was built for
    bool jac_valid_ = false;           ///< bypass factorization available
    StaticKey jac_key_;                ///< static key the Jacobian sits on
    std::vector<double> rhs_base_;     ///< per-solve source + cap rhs
    std::vector<double> rhs_mos_;      ///< MOS companion currents (cached
                                       ///< per-device linearizations)
    std::vector<double> rhs_, x_new_, x_try_, row_buf_;  ///< hot-path buffers
    SimStats analysis_base_;           ///< stats_ at the last analysis start
    bool budget_armed_ = false;        ///< any execution budget nonzero
    std::chrono::steady_clock::time_point budget_t0_;  ///< analysis start

    // Complex (AC) backend state, built lazily on the first ac() call.
    bool ac_kernel_ready_ = false;
    CMatrix ca_work_;
    CLuSolver clu_;
    std::vector<std::complex<double>> cvals_work_;
    SparseLu<std::complex<double>> cslu_;
};

} // namespace catlift::spice
