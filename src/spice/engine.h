// catlift/spice/engine.h
//
// The kernel analogue simulator.  The paper's AnaFAULT drives ELDO; this
// engine plays that role: it accepts a netlist::Circuit, computes a DC
// operating point and/or a transient response, and returns Waveforms.
//
// Numerics
// --------
//  * Modified Nodal Analysis: one unknown per non-ground node plus one
//    branch current per voltage source.
//  * Damped Newton-Raphson with per-iteration voltage limiting for the
//    nonlinear MOS devices.
//  * DC operating point: plain NR, then gmin stepping, then source stepping
//    (in that order) until one converges.
//  * Transient: backward-Euler or trapezoidal companion models, fixed
//    user-grid steps with automatic internal step cutting when NR fails --
//    the paper's experiment is a fixed "400 step transient fault
//    simulation", which maps to fixed_grid mode.
//  * Every node carries gmin to ground; transient adds cmin so that nodes
//    isolated by open-fault injection stay well-posed (exactly the
//    situation AnaFAULT creates with 100 MOhm opens and split nodes).

#pragma once

#include "netlist/netlist.h"
#include "spice/ac.h"
#include "spice/matrix.h"
#include "spice/waveform.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace catlift::spice {

/// Integration method for transient analysis.
enum class Method { BackwardEuler, Trapezoidal };

struct SimOptions {
    double gmin = 1e-12;    ///< conductance to ground on every node [S]
    double cmin = 1e-15;    ///< transient-only cap to ground per node [F]
    double abstol = 1e-9;   ///< current convergence floor [A]
    double vntol = 1e-6;    ///< voltage convergence floor [V]
    double reltol = 1e-3;   ///< relative convergence tolerance
    double dv_limit = 1.0;  ///< max voltage change per NR iteration [V]
    int max_nr = 150;       ///< NR iteration cap per solve
    int max_step_cuts = 10; ///< transient: halvings of the step on failure
    Method method = Method::Trapezoidal;
    bool uic = false;       ///< transient: skip DC OP, start from 0 / .ic
};

/// Counters for performance reporting (the source-model vs resistor-model
/// runtime comparison of the paper reads these).
struct SimStats {
    std::size_t matrix_size = 0;
    std::size_t nr_iterations = 0;
    std::size_t lu_factorizations = 0;
    std::size_t tran_steps = 0;
    std::size_t step_cuts = 0;
    /// User-grid steps never integrated because a step observer stopped the
    /// transient early (the batch engine's ERASER-style trimmed redundancy).
    std::size_t steps_saved = 0;
};

struct DcResult {
    bool converged = false;
    int iterations = 0;
    /// Strategy that finally converged: "nr", "gmin", "source".
    std::string strategy;
    std::map<std::string, double> voltages;
};

/// DC transfer sweep: re-solve the operating point for each level of one
/// source (fresh solve per point; circuits here are tiny).  Returns one
/// DcResult per level, in order.
std::vector<DcResult> dc_sweep(const netlist::Circuit& ckt,
                               const std::string& source,
                               const std::vector<double>& levels,
                               const SimOptions& opt = {});

/// Observer invoked after every accepted user-grid sample of a transient
/// analysis: receives the sample time and the waveforms recorded so far
/// (the new sample is the last row).  Returning false stops the analysis
/// at that sample; the truncated waveforms are returned and the skipped
/// user-grid steps are counted in SimStats::steps_saved.  Fault campaigns
/// use this to abort a faulty run at the first confirmed detection.
using StepObserver = std::function<bool(double t, const Waveforms& wf)>;

/// One-shot simulator bound to a circuit.  The circuit is copied: the
/// simulator stays valid independently of the caller's object lifetime
/// (fault campaigns hand in short-lived mutated circuits).
class Simulator {
public:
    explicit Simulator(netlist::Circuit ckt, SimOptions opt = {});

    /// DC operating point.
    DcResult dc_op();

    /// Transient analysis.  Returns waveforms for every node (plus the
    /// requested traces), sampled on the user grid t = tstart..tstop step
    /// tstep.  Throws catlift::Error if the analysis cannot proceed.
    Waveforms tran(const netlist::TranSpec& spec);

    /// Transient analysis with a per-accepted-step observer (may be empty).
    Waveforms tran(const netlist::TranSpec& spec,
                   const StepObserver& observer);

    /// Convenience: run the circuit's own .tran card.
    Waveforms tran();

    /// Small-signal AC analysis: linearise at the DC operating point and
    /// sweep the frequency axis logarithmically.  Sources participate with
    /// their `ac_mag`.  Throws if the operating point cannot be found.
    AcResult ac(const AcSpec& spec);

    /// Convenience: run the circuit's own .ac card.
    AcResult ac();

    const SimStats& stats() const { return stats_; }

    /// Number of MNA unknowns (nodes + voltage-source branches).  The source
    /// fault model grows this; the resistor model does not.
    std::size_t unknowns() const { return n_nodes_ + n_branches_; }

private:
    struct MosInstance {
        std::size_t dev;        // index into circuit devices
        int d, g, s;            // node indices (-1 = ground)
        double w, l;
        const netlist::MosModel* model;
    };
    struct CapInstance {
        int n1, n2;     // node indices (-1 = ground)
        double c;
        double v_prev = 0.0;  // branch voltage at previous accepted step
        double i_prev = 0.0;  // branch current at previous accepted step
    };

    int node_id(const std::string& name) const;  // -1 for ground
    double volt(const std::vector<double>& x, int node) const {
        return node < 0 ? 0.0 : x[static_cast<std::size_t>(node)];
    }

    /// Assemble MNA at candidate solution x.  `h` <= 0 means DC (caps open);
    /// otherwise the transient companion for the active method is stamped.
    /// `src_scale` scales every independent source (source stepping),
    /// `extra_gmin` is added on top of opt_.gmin (gmin stepping),
    /// `t` is the transient time for source evaluation (DC uses dc_value).
    void assemble(const std::vector<double>& x, double h, double t, bool dc,
                  double src_scale, double extra_gmin, Matrix& a,
                  std::vector<double>& rhs) const;

    /// Newton loop at fixed (h, t).  Returns true on convergence; x is
    /// updated in place.
    bool newton(std::vector<double>& x, double h, double t, bool dc,
                double src_scale, double extra_gmin, int max_iter);

    /// Commit capacitor history after an accepted transient step.
    void update_cap_history(const std::vector<double>& x, double h);

    const netlist::Circuit ckt_;  ///< owned copy (see constructor note)
    SimOptions opt_;
    SimStats stats_;

    std::vector<std::string> node_names_;           // index -> name
    std::map<std::string, std::size_t> node_index_;  // name -> index
    std::size_t n_nodes_ = 0;
    std::size_t n_branches_ = 0;                     // V-source currents
    std::vector<std::size_t> vsource_devs_;          // device idx per branch
    std::vector<MosInstance> mos_;
    mutable std::vector<CapInstance> caps_;  // history mutated across steps
};

} // namespace catlift::spice
