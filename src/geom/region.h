// catlift/geom/region.h
//
// A Region is a set of axis-aligned rectangles interpreted as their union
// (a rectilinear polygon, possibly disconnected, possibly with overlapping
// member rects).  It provides the exact union-area computation used by the
// critical-area engine and a decomposition into disjoint rectangles.

#pragma once

#include "geom/rect.h"

#include <vector>

namespace catlift::geom {

class Region {
public:
    Region() = default;
    explicit Region(std::vector<Rect> rects) : rects_(std::move(rects)) {}

    void add(const Rect& r) {
        if (!r.empty()) rects_.push_back(r);
    }

    const std::vector<Rect>& rects() const { return rects_; }
    bool empty() const { return rects_.empty(); }
    std::size_t size() const { return rects_.size(); }

    /// Exact area of the union of all member rectangles (nm^2, as double).
    /// Sweep-line over x with an interval-merge over y; O(n^2 log n) worst
    /// case which is ample for per-site critical-area evaluation (tens of
    /// rects per site).
    double union_area() const;

    /// Bounding box of the union; degenerate rect if empty.
    Rect bbox() const;

    /// True if point lies in (or on the boundary of) any member rect.
    bool contains(const Point& p) const;

    /// Decompose the union into non-overlapping rectangles (maximal
    /// horizontal slabs).  Used where double counting must be avoided.
    std::vector<Rect> disjoint() const;

private:
    std::vector<Rect> rects_;
};

} // namespace catlift::geom
