#include "geom/spatial_index.h"

#include <algorithm>

namespace catlift::geom {

SpatialIndex::SpatialIndex(Coord cell) : cell_(cell) {
    require(cell > 0, "SpatialIndex: cell pitch must be positive");
}

void SpatialIndex::insert(std::size_t id, const Rect& r) {
    const std::int64_t cx0 = cell_of(r.lo.x), cx1 = cell_of(r.hi.x);
    const std::int64_t cy0 = cell_of(r.lo.y), cy1 = cell_of(r.hi.y);
    for (std::int64_t cx = cx0; cx <= cx1; ++cx)
        for (std::int64_t cy = cy0; cy <= cy1; ++cy)
            grid_[CellKey{cx, cy}].emplace_back(id, r);
    ++count_;
}

std::vector<std::size_t> SpatialIndex::query(const Rect& window) const {
    std::vector<std::size_t> out;
    const std::int64_t cx0 = cell_of(window.lo.x), cx1 = cell_of(window.hi.x);
    const std::int64_t cy0 = cell_of(window.lo.y), cy1 = cell_of(window.hi.y);
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
        for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
            auto it = grid_.find(CellKey{cx, cy});
            if (it == grid_.end()) continue;
            for (const auto& [id, rect] : it->second)
                if (rect.touches(window)) out.push_back(id);
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace catlift::geom
