// catlift/geom/rect.h
//
// Exact axis-aligned rectangle geometry over nanometre integer coordinates.
// Rect is the workhorse of the layout database: shapes, design-rule checks,
// critical-area site enumeration and connectivity extraction all operate on
// rectangles (rectilinear polygons are represented as rectangle sets).

#pragma once

#include "geom/base.h"

#include <algorithm>
#include <iosfwd>
#include <optional>
#include <vector>

namespace catlift::geom {

/// A point in the layout plane (nanometres).
struct Point {
    Coord x = 0;
    Coord y = 0;

    friend bool operator==(const Point&, const Point&) = default;
};

/// Closed axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y].
///
/// Invariant: lo.x <= hi.x and lo.y <= hi.y (enforced by make()/normalised()).
/// A rectangle with zero width or height is degenerate but legal (it carries
/// no area yet still participates in touching tests).
struct Rect {
    Point lo;
    Point hi;

    Rect() = default;
    Rect(Coord x0, Coord y0, Coord x1, Coord y1)
        : lo{std::min(x0, x1), std::min(y0, y1)},
          hi{std::max(x0, x1), std::max(y0, y1)} {}

    /// Construct from micron coordinates (convenience for tests/builders).
    static Rect um(double x0, double y0, double x1, double y1) {
        return Rect(from_um(x0), from_um(y0), from_um(x1), from_um(y1));
    }

    Coord width() const { return hi.x - lo.x; }
    Coord height() const { return hi.y - lo.y; }

    /// Exact area in nm^2 as double (a 64-bit product may overflow int64 for
    /// chip-sized rects; double carries 53 bits which is ample for mm-scale
    /// layouts at nm resolution used here).
    double area() const {
        return static_cast<double>(width()) * static_cast<double>(height());
    }

    bool empty() const { return width() == 0 || height() == 0; }

    Point center() const { return Point{(lo.x + hi.x) / 2, (lo.y + hi.y) / 2}; }

    /// True if `p` lies inside or on the boundary.
    bool contains(const Point& p) const {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
    }

    /// True if `r` lies fully inside (or on the boundary of) this rect.
    bool contains(const Rect& r) const {
        return r.lo.x >= lo.x && r.hi.x <= hi.x && r.lo.y >= lo.y &&
               r.hi.y <= hi.y;
    }

    /// True if the two rects share any point (boundary touch counts).
    bool touches(const Rect& r) const {
        return r.lo.x <= hi.x && r.hi.x >= lo.x && r.lo.y <= hi.y &&
               r.hi.y >= lo.y;
    }

    /// True if the two rects share interior area (boundary touch does not).
    bool overlaps(const Rect& r) const {
        return r.lo.x < hi.x && r.hi.x > lo.x && r.lo.y < hi.y && r.hi.y > lo.y;
    }

    /// Rectangle grown by `d` on every side (d may be negative; collapses to
    /// a degenerate rect rather than inverting).
    Rect expanded(Coord d) const {
        Rect r;
        r.lo.x = lo.x - d;
        r.lo.y = lo.y - d;
        r.hi.x = hi.x + d;
        r.hi.y = hi.y + d;
        if (r.lo.x > r.hi.x) r.lo.x = r.hi.x = (r.lo.x + r.hi.x) / 2;
        if (r.lo.y > r.hi.y) r.lo.y = r.hi.y = (r.lo.y + r.hi.y) / 2;
        return r;
    }

    /// Smallest rectangle containing both.
    Rect united(const Rect& r) const {
        return Rect(std::min(lo.x, r.lo.x), std::min(lo.y, r.lo.y),
                    std::max(hi.x, r.hi.x), std::max(hi.y, r.hi.y));
    }

    friend bool operator==(const Rect&, const Rect&) = default;
};

/// Intersection of two rects, or nullopt if they do not touch.
std::optional<Rect> intersection(const Rect& a, const Rect& b);

/// Minimum L-infinity style *edge separation* between two disjoint rects:
/// the larger of the x-gap and y-gap (0 if they touch or overlap).  This is
/// the quantity a square spot defect of side `s` must bridge: a defect can
/// short two shapes iff its side exceeds their separation along each axis.
Coord separation(const Rect& a, const Rect& b);

/// Axis gaps between two rects: gap.x is the horizontal free distance
/// (0 if the x-extents overlap), likewise gap.y.  Used by the critical-area
/// kernels which need the per-axis distances, not just the max.
Point axis_gaps(const Rect& a, const Rect& b);

/// Length over which the x-extents of the two rects overlap (their "facing
/// length" for a vertical bridging defect), 0 if disjoint in x.
Coord x_overlap(const Rect& a, const Rect& b);

/// Length over which the y-extents overlap.
Coord y_overlap(const Rect& a, const Rect& b);

/// Geometric difference a \ b as up to four disjoint rectangles.  Used by
/// the extractor to clip transistor channels out of diffusion shapes before
/// connectivity analysis.
std::vector<Rect> subtract(const Rect& a, const Rect& b);

std::ostream& operator<<(std::ostream& os, const Point& p);
std::ostream& operator<<(std::ostream& os, const Rect& r);

} // namespace catlift::geom
