#include "geom/region.h"

#include <algorithm>
#include <set>

namespace catlift::geom {
namespace {

// Merge a set of [lo,hi) intervals and return total covered length.
double merged_length(std::vector<std::pair<Coord, Coord>>& iv) {
    if (iv.empty()) return 0.0;
    std::sort(iv.begin(), iv.end());
    double total = 0.0;
    Coord cur_lo = iv.front().first;
    Coord cur_hi = iv.front().second;
    for (std::size_t i = 1; i < iv.size(); ++i) {
        if (iv[i].first > cur_hi) {
            total += static_cast<double>(cur_hi - cur_lo);
            cur_lo = iv[i].first;
            cur_hi = iv[i].second;
        } else {
            cur_hi = std::max(cur_hi, iv[i].second);
        }
    }
    total += static_cast<double>(cur_hi - cur_lo);
    return total;
}

} // namespace

double Region::union_area() const {
    if (rects_.empty()) return 0.0;
    // Collect x event coordinates.
    std::set<Coord> xs;
    for (const Rect& r : rects_) {
        if (r.empty()) continue;
        xs.insert(r.lo.x);
        xs.insert(r.hi.x);
    }
    if (xs.size() < 2) return 0.0;
    double area = 0.0;
    auto it = xs.begin();
    Coord prev = *it++;
    std::vector<std::pair<Coord, Coord>> iv;
    for (; it != xs.end(); ++it) {
        const Coord x = *it;
        // Slab [prev, x): gather y-intervals of rects spanning this slab.
        iv.clear();
        for (const Rect& r : rects_) {
            if (r.empty()) continue;
            if (r.lo.x <= prev && r.hi.x >= x)
                iv.emplace_back(r.lo.y, r.hi.y);
        }
        area += merged_length(iv) * static_cast<double>(x - prev);
        prev = x;
    }
    return area;
}

Rect Region::bbox() const {
    if (rects_.empty()) return Rect();
    Rect b = rects_.front();
    for (const Rect& r : rects_) b = b.united(r);
    return b;
}

bool Region::contains(const Point& p) const {
    return std::any_of(rects_.begin(), rects_.end(),
                       [&](const Rect& r) { return r.contains(p); });
}

std::vector<Rect> Region::disjoint() const {
    // Horizontal-slab decomposition: cut the plane at every rect's y edges,
    // then within each slab merge x-intervals into maximal runs.
    std::vector<Rect> out;
    std::set<Coord> ys;
    for (const Rect& r : rects_) {
        if (r.empty()) continue;
        ys.insert(r.lo.y);
        ys.insert(r.hi.y);
    }
    if (ys.size() < 2) return out;
    auto it = ys.begin();
    Coord prev = *it++;
    for (; it != ys.end(); ++it) {
        const Coord y = *it;
        std::vector<std::pair<Coord, Coord>> iv;
        for (const Rect& r : rects_) {
            if (r.empty()) continue;
            if (r.lo.y <= prev && r.hi.y >= y) iv.emplace_back(r.lo.x, r.hi.x);
        }
        if (!iv.empty()) {
            std::sort(iv.begin(), iv.end());
            Coord lo = iv.front().first, hi = iv.front().second;
            for (std::size_t i = 1; i < iv.size(); ++i) {
                if (iv[i].first > hi) {
                    out.emplace_back(lo, prev, hi, y);
                    lo = iv[i].first;
                    hi = iv[i].second;
                } else {
                    hi = std::max(hi, iv[i].second);
                }
            }
            out.emplace_back(lo, prev, hi, y);
        }
        prev = y;
    }
    return out;
}

} // namespace catlift::geom
