// catlift/geom/base.h
//
// Foundation definitions shared by every catlift library: the error type,
// checked narrowing, and the physical-unit conventions.
//
// Conventions
// -----------
//  * Layout coordinates are exact 64-bit integers in *nanometres*
//    (geom::Coord).  All geometry predicates are therefore exact; doubles
//    appear only at API edges (micron helpers) and in probability math.
//  * Electrical quantities are SI doubles (volts, amperes, ohms, farads,
//    seconds).

#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace catlift {

/// Exception type thrown by every catlift library on contract violation or
/// malformed input.  Carries a plain-text message; callers that need richer
/// diagnostics catch at tool boundaries and re-render.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throw catlift::Error with a message if `cond` is false.
inline void require(bool cond, const std::string& msg) {
    if (!cond) throw Error(msg);
}

namespace geom {

/// Exact layout coordinate in nanometres.
using Coord = std::int64_t;

/// Nanometres per micron: the fixed-point scale of the layout database.
inline constexpr Coord kNmPerUm = 1000;

/// Convert microns (double) to database units, rounding to nearest.
constexpr Coord from_um(double um) {
    return static_cast<Coord>(um * static_cast<double>(kNmPerUm) +
                              (um >= 0 ? 0.5 : -0.5));
}

/// Convert database units to microns.
constexpr double to_um(Coord c) {
    return static_cast<double>(c) / static_cast<double>(kNmPerUm);
}

/// Square database units expressed in square microns.
constexpr double to_um2(double nm2) {
    return nm2 / (static_cast<double>(kNmPerUm) * static_cast<double>(kNmPerUm));
}

} // namespace geom
} // namespace catlift
