// catlift/geom/spatial_index.h
//
// Uniform-grid spatial index over rectangles.  The defect analysis needs
// "which shapes lie within distance d of this shape" queries for every shape
// on a layer; a bucket grid sized to the maximum defect diameter makes the
// whole neighbour enumeration O(shapes x local density).

#pragma once

#include "geom/rect.h"

#include <cstddef>
#include <unordered_map>
#include <vector>

namespace catlift::geom {

/// Spatial index mapping rectangles (with opaque payload ids) to grid
/// buckets.  Query returns candidate ids whose rects touch an expanded
/// window; the caller applies its own exact predicate.
class SpatialIndex {
public:
    /// `cell` is the grid pitch in nm; choose >= the largest query radius
    /// plus typical shape size for best performance.  Must be positive.
    explicit SpatialIndex(Coord cell);

    /// Insert a rectangle with caller-defined id (e.g. shape index).
    void insert(std::size_t id, const Rect& r);

    /// Ids of all rects whose bounding boxes touch `window`.  Duplicates are
    /// removed; order unspecified.
    std::vector<std::size_t> query(const Rect& window) const;

    /// Ids of all rects within edge separation <= `dist` of `r` (candidate
    /// set by bounding box; exact separation up to the caller).
    std::vector<std::size_t> neighbours(const Rect& r, Coord dist) const {
        return query(r.expanded(dist));
    }

    std::size_t size() const { return count_; }

private:
    struct CellKey {
        std::int64_t cx;
        std::int64_t cy;
        friend bool operator==(const CellKey&, const CellKey&) = default;
    };
    struct CellHash {
        std::size_t operator()(const CellKey& k) const {
            const std::uint64_t a = static_cast<std::uint64_t>(k.cx);
            const std::uint64_t b = static_cast<std::uint64_t>(k.cy);
            std::uint64_t h = a * 0x9E3779B97F4A7C15ull;
            h ^= b + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
            return static_cast<std::size_t>(h);
        }
    };

    std::int64_t cell_of(Coord v) const {
        // Floor division for negative coordinates.
        std::int64_t q = v / cell_;
        if (v % cell_ != 0 && v < 0) --q;
        return q;
    }

    Coord cell_;
    std::size_t count_ = 0;
    std::unordered_map<CellKey, std::vector<std::pair<std::size_t, Rect>>,
                       CellHash>
        grid_;
};

} // namespace catlift::geom
