#include "geom/rect.h"

#include <ostream>

namespace catlift::geom {

std::optional<Rect> intersection(const Rect& a, const Rect& b) {
    const Coord x0 = std::max(a.lo.x, b.lo.x);
    const Coord y0 = std::max(a.lo.y, b.lo.y);
    const Coord x1 = std::min(a.hi.x, b.hi.x);
    const Coord y1 = std::min(a.hi.y, b.hi.y);
    if (x0 > x1 || y0 > y1) return std::nullopt;
    return Rect(x0, y0, x1, y1);
}

Point axis_gaps(const Rect& a, const Rect& b) {
    Point g{0, 0};
    if (a.hi.x < b.lo.x)
        g.x = b.lo.x - a.hi.x;
    else if (b.hi.x < a.lo.x)
        g.x = a.lo.x - b.hi.x;
    if (a.hi.y < b.lo.y)
        g.y = b.lo.y - a.hi.y;
    else if (b.hi.y < a.lo.y)
        g.y = a.lo.y - b.hi.y;
    return g;
}

Coord separation(const Rect& a, const Rect& b) {
    const Point g = axis_gaps(a, b);
    return std::max(g.x, g.y);
}

Coord x_overlap(const Rect& a, const Rect& b) {
    const Coord lo = std::max(a.lo.x, b.lo.x);
    const Coord hi = std::min(a.hi.x, b.hi.x);
    return hi > lo ? hi - lo : 0;
}

Coord y_overlap(const Rect& a, const Rect& b) {
    const Coord lo = std::max(a.lo.y, b.lo.y);
    const Coord hi = std::min(a.hi.y, b.hi.y);
    return hi > lo ? hi - lo : 0;
}

std::vector<Rect> subtract(const Rect& a, const Rect& b) {
    std::vector<Rect> out;
    const auto ov = intersection(a, b);
    if (!ov || ov->empty()) {
        if (!a.empty()) out.push_back(a);
        return out;
    }
    const Rect& c = *ov;
    // Left slab.
    if (a.lo.x < c.lo.x) out.emplace_back(a.lo.x, a.lo.y, c.lo.x, a.hi.y);
    // Right slab.
    if (c.hi.x < a.hi.x) out.emplace_back(c.hi.x, a.lo.y, a.hi.x, a.hi.y);
    // Bottom slab (within the overlap's x-range).
    if (a.lo.y < c.lo.y) out.emplace_back(c.lo.x, a.lo.y, c.hi.x, c.lo.y);
    // Top slab.
    if (c.hi.y < a.hi.y) out.emplace_back(c.lo.x, c.hi.y, c.hi.x, a.hi.y);
    // Drop degenerate slivers.
    out.erase(std::remove_if(out.begin(), out.end(),
                             [](const Rect& r) { return r.empty(); }),
              out.end());
    return out;
}

std::ostream& operator<<(std::ostream& os, const Point& p) {
    return os << '(' << p.x << ',' << p.y << ')';
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
    return os << '[' << r.lo << '-' << r.hi << ']';
}

} // namespace catlift::geom
