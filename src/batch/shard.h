// catlift/batch/shard.h
//
// Store sharding for the multi-process campaign fabric: every worker
// process appends into its own shard file (`<base>.shard-<k>`) so no two
// processes ever share an open store, and a merge/compaction pass folds
// the shards into the one canonical store the rest of the toolchain
// reads.  All files -- shards and canonical -- are ordinary ResultStore
// logs bound to the *same* campaign manifest; a shard written under any
// other manifest is a configuration error and is rejected, never silently
// mixed in.
//
// Merge semantics (the properties tests/fabric_test.cpp pins):
//  * idempotent -- records are deduped by fault id (canonical store
//    first, then shards in the given order) and written sorted by fault
//    id, so re-merging the same inputs leaves the canonical store
//    byte-identical;
//  * torn-tolerant -- a shard whose writer died mid-append contributes
//    every record before the tear, exactly as a resume would see it;
//  * strict about identity -- a foreign-manifest shard throws.

#pragma once

#include "batch/result_store.h"

#include <cstdint>
#include <string>
#include <vector>

namespace catlift::batch {

/// Path of worker `k`'s shard of the store at `base`.
std::string shard_path(const std::string& base, std::size_t k);

/// Every existing `<base>.shard-<k>` in ascending shard order.
std::vector<std::string> list_shards(const std::string& base);

/// What a merge did (anafaultc --merge-shards prints this).
struct ShardMergeReport {
    std::size_t shards_merged = 0;
    std::size_t records_in = 0;    ///< canonical + shard records scanned
    std::size_t records_kept = 0;  ///< unique fault ids written
    std::size_t duplicates = 0;    ///< records dropped by the dedupe
    bool changed = false;          ///< canonical file was rewritten
};

/// Fold `shards` (plus whatever the canonical store at `dest` already
/// holds under `manifest`) into a canonical store at `dest`.  The first
/// record seen for a fault id wins: canonical first, then shards in the
/// given order -- so a record already merged can never be displaced by a
/// later re-simulation of the same fault.  Output records are sorted by
/// fault id and the file is replaced atomically (write + rename); when
/// the merged image is byte-identical to the existing canonical store the
/// file is left untouched and `changed` stays false.  Throws
/// catlift::Error on an unreadable shard or one bound to a different
/// manifest.
ShardMergeReport merge_shards(const std::string& dest, std::uint64_t manifest,
                              const std::vector<std::string>& shards,
                              Durability durability = Durability::Flush);

} // namespace catlift::batch
