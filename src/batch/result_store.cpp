#include "batch/result_store.h"

#include "obs/obs.h"
#include "robust/failpoint.h"

#include <cstdlib>
#include <cstring>
#include <filesystem>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace catlift::batch {

std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t h) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t fnv1a(const std::string& s, std::uint64_t h) {
    return fnv1a(s.data(), s.size(), h);
}

namespace {

constexpr std::uint32_t kMagic = 0x42544143u;  // "CATB"
// v2: steps_integrated + steps_interpolated appended to each record (the
// adaptive transient kernel's counters).
// v3: bypass_solves + sparse_refactors appended (the incremental-kernel
// counters).
// v4: carried appended (cross-revision carry-over provenance).
// v5: device_stamp_skips + symbolic_cache_hits + ordering_seconds (the
// campaign-shared symbolic kernel's counters) and metric (the AC/DC
// campaigns' detection metric, now that those runners persist too).
// v6: attempts + quarantined + retry_log (the failure-containment
// layer's retry/degradation ladder provenance; `quarantined` is a
// verdict and must survive store round-trips and incremental carry).
// Any older-version store is treated as foreign and restarted, like any
// other manifest mismatch.
constexpr std::uint32_t kVersion = 6;

template <typename T>
void put(std::string& buf, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const char* p = reinterpret_cast<const char*>(&v);
    buf.append(p, sizeof v);
}

void put_str(std::string& buf, const std::string& s) {
    put(buf, static_cast<std::uint32_t>(s.size()));
    buf.append(s);
}

/// Cursor over a loaded byte buffer; every get reports success so the
/// loader can stop cleanly at a truncated tail.
struct Reader {
    const std::string& buf;
    std::size_t pos = 0;

    template <typename T>
    bool get(T& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        if (buf.size() - pos < sizeof v) return false;
        std::memcpy(&v, buf.data() + pos, sizeof v);
        pos += sizeof v;
        return true;
    }
    bool get_str(std::string& s) {
        std::uint32_t n = 0;
        if (!get(n)) return false;
        if (buf.size() - pos < n) return false;
        s.assign(buf.data() + pos, n);
        pos += n;
        return true;
    }
};

std::string encode(const FaultSimResult& r) {
    std::string p;
    put(p, static_cast<std::int32_t>(r.fault_id));
    put(p, static_cast<std::uint8_t>(r.simulated ? 1 : 0));
    put(p, static_cast<std::uint8_t>(r.detect_time ? 1 : 0));
    put(p, r.detect_time.value_or(0.0));
    put(p, r.probability);
    put(p, r.sim_seconds);
    put(p, static_cast<std::uint64_t>(r.nr_iterations));
    put(p, static_cast<std::uint64_t>(r.matrix_size));
    put(p, static_cast<std::uint64_t>(r.steps_saved));
    put(p, static_cast<std::uint64_t>(r.steps_integrated));
    put(p, static_cast<std::uint64_t>(r.steps_interpolated));
    put(p, static_cast<std::uint64_t>(r.bypass_solves));
    put(p, static_cast<std::uint64_t>(r.sparse_refactors));
    put(p, static_cast<std::uint8_t>(r.carried ? 1 : 0));
    put(p, static_cast<std::uint64_t>(r.device_stamp_skips));
    put(p, static_cast<std::uint64_t>(r.symbolic_cache_hits));
    put(p, r.ordering_seconds);
    put(p, r.numeric_seconds);
    put(p, r.metric);
    put(p, r.attempts);
    put(p, static_cast<std::uint8_t>(r.quarantined ? 1 : 0));
    put_str(p, r.description);
    put_str(p, r.error);
    put_str(p, r.retry_log);
    return p;
}

bool decode(const std::string& payload, FaultSimResult& r) {
    Reader rd{payload};
    std::int32_t id = 0;
    std::uint8_t simulated = 0, has_detect = 0, carried = 0;
    double detect = 0.0;
    std::uint64_t nr = 0, msize = 0, saved = 0, integrated = 0, interp = 0;
    std::uint64_t bypass = 0, refactors = 0, dskips = 0, cache_hits = 0;
    std::uint8_t quarantined = 0;
    if (!rd.get(id) || !rd.get(simulated) || !rd.get(has_detect) ||
        !rd.get(detect) || !rd.get(r.probability) || !rd.get(r.sim_seconds) ||
        !rd.get(nr) || !rd.get(msize) || !rd.get(saved) ||
        !rd.get(integrated) || !rd.get(interp) || !rd.get(bypass) ||
        !rd.get(refactors) || !rd.get(carried) || !rd.get(dskips) ||
        !rd.get(cache_hits) || !rd.get(r.ordering_seconds) ||
        !rd.get(r.numeric_seconds) || !rd.get(r.metric) ||
        !rd.get(r.attempts) || !rd.get(quarantined) ||
        !rd.get_str(r.description) || !rd.get_str(r.error) ||
        !rd.get_str(r.retry_log))
        return false;
    r.fault_id = id;
    r.simulated = simulated != 0;
    r.quarantined = quarantined != 0;
    if (has_detect) r.detect_time = detect;
    r.nr_iterations = static_cast<std::size_t>(nr);
    r.matrix_size = static_cast<std::size_t>(msize);
    r.steps_saved = static_cast<std::size_t>(saved);
    r.steps_integrated = static_cast<std::size_t>(integrated);
    r.steps_interpolated = static_cast<std::size_t>(interp);
    r.bypass_solves = static_cast<std::size_t>(bypass);
    r.sparse_refactors = static_cast<std::size_t>(refactors);
    r.carried = carried != 0;
    r.device_stamp_skips = static_cast<std::size_t>(dskips);
    r.symbolic_cache_hits = static_cast<std::size_t>(cache_hits);
    return rd.pos == payload.size();
}

/// Scan a store image: header + every intact record.  Returns the byte
/// offset just past the last good record (0 when the header is absent,
/// foreign or of another version) -- the single decoding path shared by
/// the appendable store and the read-only snapshot so both stop at a torn
/// tail identically.  When `expected_manifest` is given and the header
/// names a different campaign, the scan stops after the header: the
/// caller is about to restart the file, so decoding a possibly huge
/// foreign record log would be pure waste.
struct ScanResult {
    bool header_ok = false;
    std::uint64_t manifest = 0;
    std::size_t good_end = 0;
    std::vector<FaultSimResult> records;
};

ScanResult scan_store(const std::string& bytes,
                      std::optional<std::uint64_t> expected_manifest =
                          std::nullopt) {
    ScanResult out;
    Reader rd{bytes};
    std::uint32_t magic = 0, version = 0;
    std::uint64_t stored_manifest = 0;
    if (!rd.get(magic) || !rd.get(version) || !rd.get(stored_manifest) ||
        magic != kMagic || version != kVersion)
        return out;
    out.header_ok = true;
    out.manifest = stored_manifest;
    out.good_end = rd.pos;
    if (expected_manifest && stored_manifest != *expected_manifest)
        return out;
    for (;;) {
        std::uint32_t len = 0;
        if (!rd.get(len)) break;
        if (bytes.size() - rd.pos < len + sizeof(std::uint64_t)) break;
        const std::string payload = bytes.substr(rd.pos, len);
        rd.pos += len;
        std::uint64_t check = 0;
        if (!rd.get(check)) break;
        if (check != fnv1a(payload)) break;
        FaultSimResult r;
        if (!decode(payload, r)) break;
        out.records.push_back(std::move(r));
        out.good_end = rd.pos;
    }
    return out;
}

std::string read_file_bytes(const std::string& path) {
    std::string bytes;
    std::ifstream in(path, std::ios::binary);
    if (in.good()) {
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    return bytes;
}

} // namespace

std::string store_header(std::uint64_t manifest) {
    std::string hdr;
    put(hdr, kMagic);
    put(hdr, kVersion);
    put(hdr, manifest);
    return hdr;
}

std::string encode_record(const FaultSimResult& r) {
    const std::string payload = encode(r);
    std::string rec;
    put(rec, static_cast<std::uint32_t>(payload.size()));
    rec.append(payload);
    put(rec, fnv1a(payload));
    return rec;
}

void sync_parent_directory(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
    std::filesystem::path dir = std::filesystem::path(path).parent_path();
    if (dir.empty()) dir = ".";
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
#else
    (void)path;
#endif
}

ResultStore::ResultStore(std::string path, std::uint64_t manifest,
                         Durability durability)
    : path_(std::move(path)), manifest_(manifest), durability_(durability) {
    require(!path_.empty(), "result store: empty path");

    const std::string bytes = read_file_bytes(path_);
    ScanResult scan = scan_store(bytes, manifest_);

    if (scan.header_ok && scan.manifest == manifest_) {
        loaded_ = std::move(scan.records);
        // Trim any partial tail, then continue appending after it.
        if (scan.good_end < bytes.size())
            std::filesystem::resize_file(path_, scan.good_end);
        out_.open(path_, std::ios::binary | std::ios::app);
        require(out_.good(), "result store: cannot append to " + path_);
    } else {
        // Fresh or foreign store: restart with our manifest.
        const bool existed = std::filesystem::exists(path_);
        out_.open(path_, std::ios::binary | std::ios::trunc);
        require(out_.good(), "result store: cannot write " + path_);
        const std::string hdr = store_header(manifest_);
        out_.write(hdr.data(), static_cast<std::streamsize>(hdr.size()));
        out_.flush();
        require(out_.good(), "result store: header write failed: " + path_);
        // A crash right after create could lose the *directory entry* even
        // with every append fsynced: in Fsync mode pin the new name too.
        if (!existed && durability_ == Durability::Fsync)
            sync_parent_directory(path_);
    }
    sync_to_disk();
}

ResultStore::~ResultStore() {
    // Close-time durability: whatever the page cache still holds reaches
    // stable storage before the store object goes away (Fsync mode only;
    // Flush mode's contract ends at the kernel).
    out_.flush();
    sync_to_disk();
}

void ResultStore::sync_to_disk() {
    if (durability_ != Durability::Fsync) return;
#if defined(__unix__) || defined(__APPLE__)
    // std::ofstream exposes no descriptor; a second descriptor on the same
    // file suffices -- fsync(2) syncs the file, not the descriptor, and
    // out_ has already pushed the bytes to the kernel via flush().
    const int fd = ::open(path_.c_str(), O_WRONLY);
    if (fd >= 0) {
        const bool ok = ::fsync(fd) == 0;
        ::close(fd);
        require(ok, "result store: fsync failed: " + path_);
    }
#endif
}

void ResultStore::append(const FaultSimResult& r) {
    obs::Span sp(obs::Phase::StoreAppend);
    const std::string rec = encode_record(r);

    {
        MutexLock lk(mu_);
        if (auto fp = robust::hit("store.append")) {
            // Torn-write injection: half the record reaches the kernel,
            // then the append dies -- by exception (`torn`, the contained
            // I/O-error path) or with the process (`torn_crash`, the
            // crash-resume path).  Either way the next open must trim the
            // partial record and resume exactly after the last good one.
            if (fp->action == robust::FailAction::Torn ||
                fp->action == robust::FailAction::TornCrash) {
                out_.write(rec.data(),
                           static_cast<std::streamsize>(rec.size() / 2));
                out_.flush();
                if (fp->action == robust::FailAction::TornCrash)
                    std::_Exit(137);
                throw Error("failpoint 'store.append': torn write in " +
                            path_);
            }
        }
        out_.write(rec.data(), static_cast<std::streamsize>(rec.size()));
        out_.flush();
        require(out_.good(), "result store: append failed: " + path_);
        sync_to_disk();
    }
    if (obs::metrics_enabled()) {
        obs::Registry& reg = obs::Registry::global();
        reg.counter("store.appends").add(1);
        reg.counter("store.bytes").add(rec.size());
    }
    if (obs::events_enabled())
        obs::emit_event(
            "store_flush",
            {obs::arg("fault_id", static_cast<std::int64_t>(r.fault_id)),
             obs::arg("bytes", static_cast<std::int64_t>(rec.size())),
             obs::arg("carried", static_cast<std::int64_t>(r.carried))});
}

std::optional<StoreSnapshot> load_store(const std::string& path) {
    if (path.empty()) return std::nullopt;
    ScanResult scan = scan_store(read_file_bytes(path));
    if (!scan.header_ok) return std::nullopt;
    StoreSnapshot snap;
    snap.manifest = scan.manifest;
    snap.records = std::move(scan.records);
    return snap;
}

RepairReport repair_store(const std::string& path) {
    require(std::filesystem::exists(path),
            "repair-store: no such file: " + path);
    const std::string bytes = read_file_bytes(path);
    ScanResult scan = scan_store(bytes);
    RepairReport rep;
    rep.bytes_total = bytes.size();
    rep.header_ok = scan.header_ok;
    if (!scan.header_ok) {
        // No recoverable prefix: leave the file alone rather than
        // truncating it to nothing.
        rep.bytes_kept = bytes.size();
        return rep;
    }
    rep.manifest = scan.manifest;
    rep.records_kept = scan.records.size();
    rep.bytes_kept = scan.good_end;
    if (scan.good_end < bytes.size())
        std::filesystem::resize_file(path, scan.good_end);
    return rep;
}

} // namespace catlift::batch
