// catlift/batch/scheduler.h
//
// Work-stealing scheduler for batch fault-simulation campaigns.  The
// paper's AnaFAULT re-ran the kernel once per fault, serially; its
// follow-up [21] parallelised the campaign on a workstation cluster.  This
// is the shared-memory equivalent: one fault queue, ordered by occurrence
// probability so that the coverage curve converges early (the most likely
// faults -- the ones dominating weighted coverage -- are simulated first),
// executed by a pool of workers that steal from each other when their own
// share drains.
//
// The scheduler is deliberately generic: a job is an index plus a
// priority, and the campaign layer supplies the closure that simulates
// that index.  Results are written by index, so verdicts are independent
// of execution order -- a batch campaign at 8 threads is byte-identical
// to the same campaign at 1 thread (tested).

#pragma once

#include "geom/base.h"

#include <cstddef>
#include <functional>
#include <vector>

namespace catlift::batch {

/// One schedulable unit: an index into the caller's job array plus the
/// priority used for ordering (campaigns use the fault probability).
struct Job {
    std::size_t index = 0;
    double priority = 0.0;
};

/// Execution counters of one scheduler run.
struct SchedulerStats {
    std::size_t executed = 0;  ///< jobs run (each job exactly once)
    std::size_t steals = 0;    ///< jobs taken from another worker's deque
    /// Jobs whose closure threw under ErrorPolicy::RecordAndContinue (0
    /// under CancelCampaign, where the first exception rethrows instead).
    std::size_t failed_jobs = 0;
    /// what() of the first recorded job exception (RecordAndContinue).
    std::string first_error;
};

/// What Scheduler::run does when a job closure throws.
enum class ErrorPolicy {
    /// Cancel the campaign: jobs not yet started are abandoned and the
    /// first exception is rethrown after every worker has stopped.  The
    /// right policy when an exception means the whole campaign is doomed
    /// (it must not burn hours of kernel time first).
    CancelCampaign,
    /// Contain the failure: record it (SchedulerStats::failed_jobs, obs
    /// counter `scheduler.job_errors`, event `job_error`) and keep
    /// draining the queue.  The campaign runners use this -- their per
    /// -fault handling already retires a failing fault as failed or
    /// quarantined, so anything reaching the scheduler is a last-resort
    /// escape that must not kill the other faults' verdicts.
    RecordAndContinue,
};

/// Aggregate statistics of one batch campaign: what the scheduler, the
/// fault-collapsing pre-pass, the per-point observers (early abort,
/// adaptive stepping, warm starts) and the result store each contributed.
/// Carried on the transient, AC and DC campaign results; each campaign
/// fills the counters that apply to its analysis.
///
/// Counter-reset contract (tested): every kernel-work counter below
/// (`scheduled`, `early_aborts`, `steps_*`, `bypass_solves`, ...) covers
/// work done by the *current process only*.  Results taken from a result
/// store contribute nothing to them; they are reported separately as
/// provenance counts: `resumed` for records this same campaign computed
/// in a previous run, `carried_from_store` for records whose verdict was
/// carried across a layout revision by the incremental engine (the
/// record's `carried` flag).
struct BatchStats {
    unsigned threads = 1;        ///< workers requested (the scheduler caps
                                 ///< actual workers at the job count)
    std::size_t classes = 0;     ///< equivalence classes after collapsing
    std::size_t collapsed = 0;   ///< faults folded into a class representative
    std::size_t resumed = 0;     ///< prior-run results of this campaign
                                 ///< loaded from the result store
    std::size_t carried_from_store = 0; ///< store-loaded results whose
                                        ///< verdict was carried from a
                                        ///< baseline revision (incremental)
    std::size_t scheduled = 0;   ///< kernel simulations actually run
    std::size_t early_aborts = 0; ///< runs stopped early by detection
    std::size_t steps_saved = 0;  ///< tran: user-grid steps never integrated
    std::size_t steals = 0;       ///< cross-worker job steals
    // -- adaptive transient kernel (nominal run + this run's faults) --------
    std::size_t steps_integrated = 0;  ///< companion steps actually solved
    std::size_t steps_interpolated = 0; ///< grid samples filled by the LTE
                                        ///< controller without a solve
    // -- incremental kernel (stamp split / sparse / bypass) -----------------
    std::size_t bypass_solves = 0;     ///< Newton solves that reused the
                                       ///< previous factorization outright
    std::size_t sparse_refactors = 0;  ///< pattern-reused numeric
                                       ///< refactorizations (0 when dense)
    std::size_t device_stamp_skips = 0; ///< MOS evaluations skipped by the
                                        ///< per-device bypass
    // -- campaign-shared symbolic kernel ------------------------------------
    std::size_t symbolic_cache_hits = 0; ///< faulty kernel builds that
                                         ///< adopted the nominal circuit's
                                         ///< elimination order (denominator:
                                         ///< `scheduled`)
    double ordering_seconds = 0.0;  ///< sparse one-time analyses (ordering +
                                    ///< fill discovery) across all kernels
    double numeric_seconds = 0.0;   ///< sparse pattern-reused refactor time
    // -- AC campaign --------------------------------------------------------
    std::size_t freq_points_saved = 0; ///< sweep points skipped by dB abort
    // -- DC campaign / sweeps -----------------------------------------------
    std::size_t warm_start_solves = 0; ///< OPs converged from a warm start
    std::size_t nr_saved_warm = 0;     ///< NR iterations saved vs cold solves
    // -- failure containment ------------------------------------------------
    std::size_t retries = 0;       ///< degraded re-attempts (retry ladder)
    std::size_t quarantined = 0;   ///< faults that exhausted the ladder
    std::size_t job_errors = 0;    ///< exceptions contained by the scheduler
                                   ///< (RecordAndContinue policy)
    std::size_t store_errors = 0;  ///< store appends that failed and were
                                   ///< contained (verdict kept in memory)
    // -- multi-process fabric (filled by the supervisor, not the runner) ----
    std::size_t worker_processes = 0; ///< fabric worker slots (0: in-process)
    std::size_t worker_spawns = 0;    ///< processes launched (respawns incl.)
    std::size_t worker_deaths = 0;    ///< crashes / nonzero exits / timeouts
    std::size_t worker_timeouts = 0;  ///< deaths from heartbeat silence
    std::size_t poisoned = 0;         ///< faults quarantined by the
                                      ///< supervisor's poison-fault detector
};

/// Work-stealing thread pool.  `run` sorts the jobs by descending priority
/// (stable, so equal priorities keep list order and execution stays
/// reproducible), deals them round-robin into one deque per worker, and
/// blocks until every job has executed.  Idle workers steal from the back
/// of their neighbours' deques -- own work is consumed highest-priority
/// first, stolen work lowest-priority first, which keeps contention at
/// opposite deque ends.
class Scheduler {
public:
    /// `threads` = 0 or 1 runs inline on the calling thread.
    explicit Scheduler(unsigned threads);

    unsigned threads() const { return threads_; }

    /// Execute fn(job.index) for every job.  A worker exception follows
    /// `policy`: CancelCampaign (default, the historical contract)
    /// abandons jobs not yet started, lets in-flight jobs finish, and
    /// rethrows the first exception after all workers have stopped;
    /// RecordAndContinue counts the failure and drains the rest of the
    /// queue (see ErrorPolicy).
    SchedulerStats run(std::vector<Job> jobs,
                       const std::function<void(std::size_t)>& fn,
                       ErrorPolicy policy = ErrorPolicy::CancelCampaign) const;

private:
    unsigned threads_ = 1;
};

} // namespace catlift::batch
