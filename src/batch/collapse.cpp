#include "batch/collapse.h"

#include "netlist/netlist.h"

#include <algorithm>
#include <unordered_map>

namespace catlift::batch {

using lift::Fault;
using lift::FaultKind;
using lift::TerminalRef;

namespace {

std::string term_key(const TerminalRef& t) {
    return t.device + ":" + std::to_string(t.terminal);
}

} // namespace

std::string effect_signature(const Fault& f) {
    switch (f.kind) {
        case FaultKind::LocalShort:
        case FaultKind::GlobalShort: {
            std::string a = netlist::canon_node(f.net_a);
            std::string b = netlist::canon_node(f.net_b);
            if (b < a) std::swap(a, b);
            return "S:" + a + "|" + b;
        }
        case FaultKind::StuckOpen:
            return "T:" + term_key(f.victim);
        case FaultKind::LineOpen:
        case FaultKind::SplitNode: {
            // Mirror inject(): one terminal is a plain terminal open (the
            // net is implied by the terminal), more than one is a split.
            if (f.group_b.size() == 1) return "T:" + term_key(f.group_b[0]);
            std::vector<TerminalRef> terms = f.group_b;
            std::sort(terms.begin(), terms.end());
            std::string sig = "P:" + netlist::canon_node(f.net);
            for (const TerminalRef& t : terms) sig += ":" + term_key(t);
            return sig;
        }
    }
    return "?";
}

std::vector<CollapsedClass> collapse(const std::vector<Fault>& faults) {
    std::vector<std::string> sigs;
    sigs.reserve(faults.size());
    for (const Fault& f : faults) sigs.push_back(effect_signature(f));
    return collapse_by_signature(sigs);
}

std::vector<CollapsedClass> collapse_by_signature(
    const std::vector<std::string>& signatures) {
    std::vector<CollapsedClass> classes;
    std::unordered_map<std::string, std::size_t> by_sig;
    by_sig.reserve(signatures.size());
    for (std::size_t i = 0; i < signatures.size(); ++i) {
        if (signatures[i].empty()) {
            classes.push_back(CollapsedClass{i, {i}});
            continue;
        }
        auto [it, fresh] = by_sig.emplace(signatures[i], classes.size());
        if (fresh) classes.push_back(CollapsedClass{i, {i}});
        else classes[it->second].members.push_back(i);
    }
    return classes;
}

std::vector<CollapsedClass> singleton_classes(std::size_t n) {
    std::vector<CollapsedClass> classes;
    classes.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        classes.push_back(CollapsedClass{i, {i}});
    return classes;
}

std::vector<Job> class_jobs(
    const std::vector<CollapsedClass>& classes,
    const std::function<double(std::size_t)>& probability) {
    std::vector<Job> jobs;
    jobs.reserve(classes.size());
    for (std::size_t c = 0; c < classes.size(); ++c) {
        double prio = 0.0;
        for (std::size_t m : classes[c].members)
            prio = std::max(prio, probability(m));
        jobs.push_back(Job{c, prio});
    }
    return jobs;
}

} // namespace catlift::batch
