#include "batch/scheduler.h"

#include "core/thread_annotations.h"
#include "obs/obs.h"
#include "robust/failpoint.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <thread>

namespace catlift::batch {

Scheduler::Scheduler(unsigned threads) : threads_(std::max(1u, threads)) {}

namespace {

/// One worker's deque with its lock.  Owner pops the front, thieves pop the
/// back.
struct WorkDeque {
    Mutex mu;
    std::deque<std::size_t> jobs CATLIFT_GUARDED_BY(mu);
};

/// Publish one contained job failure (RecordAndContinue).
void record_job_error(const std::exception_ptr& ep, std::size_t idx) {
    if (obs::metrics_enabled())
        obs::Registry::global().counter("scheduler.job_errors").add(1);
    if (obs::events_enabled()) {
        std::string what = "unknown exception";
        try {
            std::rethrow_exception(ep);
        } catch (const std::exception& e) {
            what = e.what();
        } catch (...) {
        }
        obs::emit_event("job_error",
                        {obs::arg("job", static_cast<std::int64_t>(idx)),
                         obs::arg("error", what)});
    }
}

std::string what_of(const std::exception_ptr& ep) {
    try {
        std::rethrow_exception(ep);
    } catch (const std::exception& e) {
        return e.what();
    } catch (...) {
        return "unknown exception";
    }
}

}  // namespace

SchedulerStats Scheduler::run(std::vector<Job> jobs,
                              const std::function<void(std::size_t)>& fn,
                              ErrorPolicy policy) const {
    SchedulerStats stats;
    if (jobs.empty()) return stats;

    // Highest probability first; stable so ties keep fault-list order and
    // the deal below is reproducible run to run.
    std::stable_sort(jobs.begin(), jobs.end(),
                     [](const Job& a, const Job& b) {
                         return a.priority > b.priority;
                     });

    if (threads_ == 1 || jobs.size() == 1) {
        // Same error-policy contract as the threaded path.  Inline jobs
        // run on the caller's trace lane.
        if (obs::enabled_mask()) obs::set_lane_name("main");
        for (const Job& j : jobs) {
            try {
                robust::hit("sched.job");  // injected-exception / crash site
                fn(j.index);
            } catch (...) {
                if (policy == ErrorPolicy::CancelCampaign) throw;
                const std::exception_ptr ep = std::current_exception();
                if (stats.failed_jobs == 0) stats.first_error = what_of(ep);
                ++stats.failed_jobs;
                record_job_error(ep, j.index);
            }
            ++stats.executed;
        }
        if (obs::metrics_enabled())
            obs::Registry::global()
                .counter("scheduler.jobs")
                .add(stats.executed);
        return stats;
    }

    const unsigned w = std::min<unsigned>(
        threads_, static_cast<unsigned>(jobs.size()));
    std::vector<WorkDeque> deques(w);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        deques[i % w].jobs.push_back(jobs[i].index);

    std::atomic<std::size_t> executed{0};
    std::atomic<std::size_t> steals{0};
    std::atomic<std::size_t> failed{0};
    std::atomic<bool> cancelled{false};
    // First-exception slot: workers race to publish under the slot's
    // mutex; the post-join reads below reacquire it so the analysis (and
    // TSan) see one consistent discipline rather than a join-ordered
    // exception.  (A struct because guarded_by binds to data members.)
    struct ErrorSlot {
        Mutex mu;
        std::exception_ptr first CATLIFT_GUARDED_BY(mu);
    } err;

    auto worker = [&](unsigned self) {
        // Name this worker's trace lane so fault spans land on a
        // readable "worker-N" track in the exported trace.
        if (obs::enabled_mask())
            obs::set_lane_name("worker-" + std::to_string(self));
        for (;;) {
            if (cancelled.load(std::memory_order_relaxed)) return;
            std::size_t idx = 0;
            bool have = false, stolen = false;
            {
                MutexLock lk(deques[self].mu);
                if (!deques[self].jobs.empty()) {
                    idx = deques[self].jobs.front();
                    deques[self].jobs.pop_front();
                    have = true;
                }
            }
            if (!have) {
                // Steal: scan the other deques starting after self, taking
                // from the back (the victim's lowest-priority pending job).
                for (unsigned k = 1; k < w && !have; ++k) {
                    WorkDeque& victim = deques[(self + k) % w];
                    MutexLock lk(victim.mu);
                    if (!victim.jobs.empty()) {
                        idx = victim.jobs.back();
                        victim.jobs.pop_back();
                        have = stolen = true;
                    }
                }
            }
            if (!have) return;  // every deque empty: done
            if (stolen) steals.fetch_add(1, std::memory_order_relaxed);
            try {
                robust::hit("sched.job");  // injected-exception / crash site
                fn(idx);
            } catch (...) {
                const std::exception_ptr ep = std::current_exception();
                if (policy == ErrorPolicy::CancelCampaign)
                    cancelled.store(true, std::memory_order_relaxed);
                else
                    failed.fetch_add(1, std::memory_order_relaxed);
                {
                    MutexLock lk(err.mu);
                    if (!err.first) err.first = ep;
                }
                if (policy == ErrorPolicy::RecordAndContinue)
                    record_job_error(ep, idx);
            }
            executed.fetch_add(1, std::memory_order_relaxed);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(w);
    for (unsigned t = 0; t < w; ++t) pool.emplace_back(worker, t);
    for (auto& th : pool) th.join();

    {
        // Workers are joined, but holding err.mu keeps the annotated
        // contract (and the analysis) exact instead of relying on the
        // happens-before edge of the joins.
        MutexLock lk(err.mu);
        if (policy == ErrorPolicy::CancelCampaign && err.first)
            std::rethrow_exception(err.first);
        if (err.first) stats.first_error = what_of(err.first);
    }
    stats.executed = executed.load();
    stats.steals = steals.load();
    stats.failed_jobs = failed.load();
    if (obs::metrics_enabled()) {
        obs::Registry& reg = obs::Registry::global();
        reg.counter("scheduler.jobs").add(stats.executed);
        reg.counter("scheduler.steals").add(stats.steals);
    }
    return stats;
}

} // namespace catlift::batch
