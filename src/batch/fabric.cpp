#include "batch/fabric.h"

#include "batch/shard.h"
#include "geom/base.h"
#include "obs/obs.h"
#include "robust/failpoint.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>
extern "C" char** environ;
#endif

namespace catlift::batch {

std::vector<FaultRange> partition_fault_ranges(const std::vector<int>& ids,
                                               unsigned workers) {
    require(workers >= 1, "fabric: need at least one worker");
    std::vector<int> sorted = ids;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    std::vector<FaultRange> out;
    if (sorted.empty()) return out;
    const std::size_t n = sorted.size();
    const std::size_t slots = std::min<std::size_t>(workers, n);
    std::size_t begin = 0;
    for (std::size_t k = 0; k < slots; ++k) {
        // First (n % slots) ranges take the extra fault.
        const std::size_t count = n / slots + (k < n % slots ? 1 : 0);
        FaultRange r;
        r.lo = sorted[begin];
        r.hi = sorted[begin + count - 1];
        r.count = count;
        out.push_back(r);
        begin += count;
    }
    return out;
}

// ---------------------------------------------------------------------------
// Worker side

HeartbeatEmitter::HeartbeatEmitter(int fd, double interval_s) : fd_(fd) {
    beat(BeatKind::Alive, -1);
    ticker_ = std::thread([this, interval_s] {
        const auto interval =
            std::chrono::duration<double>(interval_s > 0 ? interval_s : 0.05);
        while (!stop_.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(interval);
            if (stop_.load(std::memory_order_relaxed)) break;
            beat(BeatKind::Alive, -1);
        }
    });
}

HeartbeatEmitter::~HeartbeatEmitter() {
    stop_.store(true, std::memory_order_relaxed);
    if (ticker_.joinable()) ticker_.join();
}

void HeartbeatEmitter::fault_started(int fault_id) {
    beat(BeatKind::FaultStarted, fault_id);
    if (auto fp = robust::hit("worker.fault")) {
        // Poison-fault injection: `worker.fault=poison:ID` kills this
        // worker the instant fault ID starts, every time it starts -- the
        // deterministically-crashing fault the supervisor must learn to
        // quarantine.
        if (fp->action == robust::FailAction::Poison &&
            static_cast<int>(fp->param) == fault_id)
            std::_Exit(137);
    }
}

void HeartbeatEmitter::fault_retired(int fault_id) {
    beat(BeatKind::FaultRetired, fault_id);
}

void HeartbeatEmitter::beat(BeatKind kind, std::int32_t fault_id) {
#if defined(__unix__) || defined(__APPLE__)
    std::int32_t frame[2] = {static_cast<std::int32_t>(kind), fault_id};
    // One 8-byte write (<= PIPE_BUF) is atomic; a dead supervisor (EPIPE
    // with SIGPIPE ignored, or EBADF) is not the worker's problem.
    [[maybe_unused]] ssize_t n = ::write(fd_, frame, sizeof frame);
#else
    (void)kind;
    (void)fault_id;
#endif
}

void HeartbeatSink::on_event(const char* name, std::uint64_t,
                             const std::vector<obs::TraceArg>& fields) {
    const bool started = std::strcmp(name, "fault_started") == 0;
    const bool retired = !started &&
                         (std::strcmp(name, "fault_retired") == 0 ||
                          std::strcmp(name, "fault_resumed") == 0 ||
                          std::strcmp(name, "fault_quarantined") == 0);
    if (!started && !retired) return;
    for (const auto& f : fields) {
        if (std::strcmp(f.key, "fault_id") != 0 ||
            f.kind != obs::TraceArg::Kind::I64)
            continue;
        if (started)
            hb_.fault_started(static_cast<int>(f.i));
        else
            hb_.fault_retired(static_cast<int>(f.i));
        return;
    }
}

// ---------------------------------------------------------------------------
// Supervisor

#if defined(__unix__) || defined(__APPLE__)

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
}

enum class SlotState { Pending, Running, Backoff, Done, Failed };

struct Slot {
    SlotState state = SlotState::Pending;
    WorkerSlot worker;            ///< template handed to WorkerCommand
    pid_t pid = -1;
    int rfd = -1;                 ///< supervisor end of the heartbeat pipe
    std::string carry;            ///< partial beat frame between reads
    Clock::time_point last_beat;
    Clock::time_point backoff_until;
    int inflight = -1;            ///< fault started but not retired
    int last_candidate = -2;      ///< in-flight fault at the previous death
    bool timed_out = false;       ///< current incarnation was SIGKILLed
    std::string death_log;        ///< accumulated retry_log text
    SlotReport rep;
};

void bump(const char* counter) {
    if (obs::metrics_enabled())
        obs::Registry::global().counter(counter).add(1);
}

void close_pipe(Slot& s) {
    if (s.rfd >= 0) {
        ::close(s.rfd);
        s.rfd = -1;
    }
}

bool spawn_worker(Slot& s, const WorkerCommand& command) {
    s.worker.spawn_index = s.rep.spawns + s.rep.spawn_failures;
    try {
        robust::hit("worker.spawn");  // generic actions fail the launch
    } catch (const std::exception& e) {
        ++s.rep.spawn_failures;
        bump("fabric.spawn_failures");
        if (obs::events_enabled())
            obs::emit_event(
                "worker_spawn_failed",
                {obs::arg("slot", static_cast<std::int64_t>(s.worker.slot)),
                 obs::arg("error", std::string(e.what()))});
        return false;
    }

    const std::vector<std::string> argv_s = command(s.worker);
    require(!argv_s.empty(), "fabric: WorkerCommand returned empty argv");
    std::vector<char*> argv;
    argv.reserve(argv_s.size() + 1);
    for (const std::string& a : argv_s)
        argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);

    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) {
        ++s.rep.spawn_failures;
        bump("fabric.spawn_failures");
        return false;
    }
    // Supervisor end: nonblocking (the poll loop drains opportunistically)
    // and close-on-exec (no worker inherits another worker's channel).
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);

    posix_spawn_file_actions_t fa;
    posix_spawn_file_actions_init(&fa);
    // dup2 clears CLOEXEC on the target, so the child keeps exactly fd 3.
    posix_spawn_file_actions_adddup2(&fa, fds[1], kHeartbeatFd);
    pid_t pid = -1;
    const int rc = ::posix_spawn(&pid, argv[0], &fa, nullptr, argv.data(),
                                 environ);
    posix_spawn_file_actions_destroy(&fa);
    ::close(fds[1]);
    if (rc != 0) {
        ::close(fds[0]);
        ++s.rep.spawn_failures;
        bump("fabric.spawn_failures");
        return false;
    }

    s.pid = pid;
    s.rfd = fds[0];
    s.carry.clear();
    s.last_beat = Clock::now();
    s.timed_out = false;
    s.state = SlotState::Running;
    ++s.rep.spawns;
    bump("fabric.spawns");
    if (obs::events_enabled())
        obs::emit_event(
            "worker_spawned",
            {obs::arg("slot", static_cast<std::int64_t>(s.worker.slot)),
             obs::arg("pid", static_cast<std::int64_t>(pid)),
             obs::arg("spawn", static_cast<std::int64_t>(s.worker.spawn_index)),
             obs::arg("id_lo", static_cast<std::int64_t>(s.worker.range.lo)),
             obs::arg("id_hi", static_cast<std::int64_t>(s.worker.range.hi))});
    return true;
}

void drain_beats(Slot& s) {
    char buf[512];
    for (;;) {
        const ssize_t n = ::read(s.rfd, buf, sizeof buf);
        if (n > 0) {
            s.carry.append(buf, static_cast<std::size_t>(n));
            if (static_cast<std::size_t>(n) == sizeof buf) continue;
        }
        break;  // EOF, EAGAIN or error: process what we have
    }
    while (s.carry.size() >= 8) {
        std::int32_t kind = 0, fault_id = 0;
        std::memcpy(&kind, s.carry.data(), 4);
        std::memcpy(&fault_id, s.carry.data() + 4, 4);
        s.carry.erase(0, 8);
        if (auto fp = robust::hit("fabric.heartbeat")) {
            // `torn`: the beat is lost in transit -- liveness is not
            // refreshed and progress not observed, driving the timeout
            // detector exactly as a wedged worker would.
            if (fp->action == robust::FailAction::Torn) continue;
        }
        s.last_beat = Clock::now();
        if (kind == static_cast<std::int32_t>(BeatKind::FaultStarted))
            s.inflight = fault_id;
        else if (kind == static_cast<std::int32_t>(BeatKind::FaultRetired) &&
                 fault_id == s.inflight)
            s.inflight = -1;
    }
}

void handle_death(Slot& s, const std::string& how, std::uint64_t manifest,
                  const PoisonRecord& poison_record,
                  const FabricOptions& opt) {
    ++s.rep.deaths;
    bump("fabric.deaths");
    const int candidate = s.inflight;
    s.inflight = -1;
    s.death_log += "attempt " + std::to_string(s.rep.deaths) + " [worker " +
                   std::to_string(s.worker.slot) + "]: " + how;
    if (candidate >= 0)
        s.death_log += " while simulating fault " + std::to_string(candidate);
    s.death_log += "; ";
    if (obs::events_enabled())
        obs::emit_event(
            "worker_death",
            {obs::arg("slot", static_cast<std::int64_t>(s.worker.slot)),
             obs::arg("candidate", static_cast<std::int64_t>(candidate)),
             obs::arg("deaths", static_cast<std::int64_t>(s.rep.deaths)),
             obs::arg("how", how)});

    if (candidate >= 0 && candidate == s.last_candidate) {
        // Two consecutive deaths with the same fault in flight: convicted.
        // Retire it `quarantined` straight into the shard (the dead worker
        // holds no lock and ResultStore's open trims any torn tail), so
        // the respawned worker's resume pass skips it.
        FaultSimResult rec =
            poison_record(candidate, s.rep.deaths, s.death_log);
        ResultStore store(s.worker.shard, manifest, opt.durability);
        store.append(rec);
        s.rep.poisoned.push_back(candidate);
        s.last_candidate = -2;
        bump("fabric.poisoned");
        if (obs::events_enabled())
            obs::emit_event(
                "fault_poisoned",
                {obs::arg("slot", static_cast<std::int64_t>(s.worker.slot)),
                 obs::arg("fault_id", static_cast<std::int64_t>(candidate)),
                 obs::arg("deaths",
                          static_cast<std::int64_t>(s.rep.deaths))});
    } else {
        s.last_candidate = candidate;
    }

    if (s.rep.deaths > opt.max_deaths_per_range) {
        s.state = SlotState::Failed;
        return;
    }
    const double backoff = std::min(
        opt.backoff_cap_s,
        opt.backoff_base_s * std::pow(2.0, s.rep.deaths - 1));
    s.backoff_until =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(backoff));
    s.state = SlotState::Backoff;
}

}  // namespace

FabricReport run_fabric(const std::vector<int>& fault_ids,
                        std::uint64_t manifest,
                        const std::string& store_base,
                        const WorkerCommand& command,
                        const PoisonRecord& poison_record,
                        const FabricOptions& opt) {
    require(!store_base.empty(), "fabric: campaign needs a --store path");
    const std::vector<FaultRange> ranges =
        partition_fault_ranges(fault_ids, opt.workers);

    // A worker dying between beats must not kill the supervisor with
    // SIGPIPE (writes go the other way, but a WorkerCommand may hand the
    // pipe around); ignore it for the duration of the run.
    struct sigaction ignore {}, previous {};
    ignore.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore, &previous);

    std::vector<Slot> slots(ranges.size());
    for (std::size_t k = 0; k < ranges.size(); ++k) {
        Slot& s = slots[k];
        s.worker.slot = k;
        s.worker.range = ranges[k];
        s.worker.shard = shard_path(store_base, k);
        s.worker.heartbeat_fd = kHeartbeatFd;
        s.rep.slot = k;
        s.rep.range = ranges[k];
        s.rep.shard = s.worker.shard;
    }

    auto respawn_or_fail = [&](Slot& s) {
        if (spawn_worker(s, command)) return;
        if (s.rep.spawn_failures > opt.max_deaths_per_range) {
            s.state = SlotState::Failed;
            return;
        }
        s.backoff_until =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   opt.backoff_base_s));
        s.state = SlotState::Backoff;
    };

    for (Slot& s : slots) respawn_or_fail(s);

    std::vector<pollfd> pfds;
    for (;;) {
        bool live = false;
        for (const Slot& s : slots)
            if (s.state == SlotState::Running || s.state == SlotState::Backoff)
                live = true;
        if (!live) break;

        const Clock::time_point now = Clock::now();
        for (Slot& s : slots)
            if (s.state == SlotState::Backoff && now >= s.backoff_until)
                respawn_or_fail(s);

        pfds.clear();
        std::vector<Slot*> polled;
        for (Slot& s : slots)
            if (s.state == SlotState::Running) {
                pfds.push_back({s.rfd, POLLIN, 0});
                polled.push_back(&s);
            }
        if (!pfds.empty())
            ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 20);
        else
            ::poll(nullptr, 0, 10);  // everyone is backing off
        for (std::size_t i = 0; i < polled.size(); ++i)
            if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR))
                drain_beats(*polled[i]);

        for (Slot& s : slots) {
            if (s.state != SlotState::Running) continue;
            int status = 0;
            const pid_t r = ::waitpid(s.pid, &status, WNOHANG);
            if (r == s.pid) {
                drain_beats(s);  // the pipe may still hold final beats
                close_pipe(s);
                s.pid = -1;
                if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
                    s.state = SlotState::Done;
                    s.rep.completed = true;
                    if (obs::events_enabled())
                        obs::emit_event(
                            "worker_exit",
                            {obs::arg("slot", static_cast<std::int64_t>(
                                                  s.worker.slot)),
                             obs::arg("spawns", static_cast<std::int64_t>(
                                                    s.rep.spawns))});
                    continue;
                }
                std::string how;
                if (s.timed_out)
                    how = "heartbeat timeout (SIGKILL after " +
                          std::to_string(opt.worker_timeout_s) + "s silence)";
                else if (WIFSIGNALED(status))
                    how = "worker killed by signal " +
                          std::to_string(WTERMSIG(status));
                else
                    how = "worker exited with status " +
                          std::to_string(WEXITSTATUS(status));
                handle_death(s, how, manifest, poison_record, opt);
                continue;
            }
            // Still running: silent past the deadline means wedged.
            if (seconds_between(s.last_beat, Clock::now()) >
                opt.worker_timeout_s) {
                ++s.rep.timeouts;
                s.timed_out = true;
                bump("fabric.timeouts");
                if (obs::events_enabled())
                    obs::emit_event(
                        "worker_timeout",
                        {obs::arg("slot",
                                  static_cast<std::int64_t>(s.worker.slot)),
                         obs::arg("pid", static_cast<std::int64_t>(s.pid)),
                         obs::arg("timeout_s", opt.worker_timeout_s)});
                ::kill(s.pid, SIGKILL);
                // The reap on a later iteration turns this into a death.
            }
        }
    }

    ::sigaction(SIGPIPE, &previous, nullptr);

    FabricReport report;
    report.completed = true;
    for (Slot& s : slots) {
        if (!s.rep.completed) report.completed = false;
        report.spawns += static_cast<std::size_t>(s.rep.spawns);
        report.spawn_failures +=
            static_cast<std::size_t>(s.rep.spawn_failures);
        report.deaths += static_cast<std::size_t>(s.rep.deaths);
        report.timeouts += static_cast<std::size_t>(s.rep.timeouts);
        report.poisoned += s.rep.poisoned.size();
        report.slots.push_back(std::move(s.rep));
    }
    return report;
}

#else  // !POSIX

FabricReport run_fabric(const std::vector<int>&, std::uint64_t,
                        const std::string&, const WorkerCommand&,
                        const PoisonRecord&, const FabricOptions&) {
    throw Error("fabric: multi-process supervision requires POSIX");
}

#endif

} // namespace catlift::batch
