// catlift/batch/collapse.h
//
// Fault-collapsing pre-pass.  Distinct layout defects frequently map to the
// *same* electrical mutation: every metal1/metal2/poly bridge between the
// same two nets injects the same short element, and every contact open on
// the same device terminal injects the same terminal open.  Simulating each
// equivalence class once and fanning the verdict back out to every member
// (probabilities intact -- weighted coverage still counts each member's
// own probability) removes that execution redundancy before the scheduler
// ever sees the queue.
//
// The key is the fault's *effect signature*: what inject() would actually
// do to the circuit, not how the fault was extracted (kind, mechanism and
// layer are deliberately ignored).

#pragma once

#include "batch/scheduler.h"
#include "lift/fault.h"

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace catlift::batch {

/// Canonical string describing the circuit mutation a fault injects:
///   shorts                "S:<netLo>|<netHi>"          (nets sorted)
///   single-terminal opens "T:<device>:<terminal>"      (stuck-open and
///                                                       one-terminal line
///                                                       opens collapse
///                                                       together)
///   node splits           "P:<net>:<dev>:<t>,<dev>:<t>,..."  (terminals
///                                                             sorted)
std::string effect_signature(const lift::Fault& f);

/// One equivalence class: the representative is simulated, the verdict is
/// copied to every member.  `members` holds indices into the original
/// fault vector, first-seen order, representative first.
struct CollapsedClass {
    std::size_t representative = 0;
    std::vector<std::size_t> members;
};

/// Group faults by effect signature.  Classes appear in first-seen order,
/// so the result is deterministic for a given fault list.
std::vector<CollapsedClass> collapse(const std::vector<lift::Fault>& faults);

/// Group by precomputed signatures (one per job, same order); an empty
/// signature never collapses with anything.  This is the generic core of
/// collapse() for job lists that are not lift::Faults (parametric
/// campaigns supply their own signatures).
std::vector<CollapsedClass> collapse_by_signature(
    const std::vector<std::string>& signatures);

/// One class per index -- the shape of a campaign with collapsing off.
std::vector<CollapsedClass> singleton_classes(std::size_t n);

/// Scheduler jobs for a class list: one job per class, priority = the
/// best probability among its members (most likely fault first).
/// Every campaign runner (tran, AC, DC) drives these jobs through its own
/// resume-aware class loop: skip classes whose members are all satisfied
/// by the result store, simulate the first unfinished member as the
/// representative, fan the verdict out, persist each record.
std::vector<Job> class_jobs(
    const std::vector<CollapsedClass>& classes,
    const std::function<double(std::size_t)>& probability);

} // namespace catlift::batch
