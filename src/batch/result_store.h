// catlift/batch/result_store.h
//
// Crash-resumable campaign persistence: an append-only binary log of
// per-fault simulation results, bound to a manifest hash of everything
// that determines those results (circuit text, fault list, campaign
// options).  A campaign opens the store before scheduling; every record
// already present -- written by an earlier run that crashed, was killed,
// or simply finished -- is handed back so only the remaining faults are
// simulated.  A store whose manifest does not match (the circuit or the
// options changed) is discarded and restarted, never silently reused.
//
// The log tolerates truncation anywhere: each record carries its payload
// length and an FNV-1a checksum, and loading stops at the first short or
// corrupt record, trimming the file back to the last good byte.  Killing
// a campaign mid-write therefore costs at most one fault's result.

#pragma once

#include "core/thread_annotations.h"
#include "geom/base.h"

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

namespace catlift::batch {

/// Outcome of one fault simulation -- the unit the store persists and the
/// campaign layer aggregates (anafault::FaultSimResult is an alias).
struct FaultSimResult {
    int fault_id = 0;
    std::string description;
    double probability = 0.0;
    bool simulated = false;            ///< kernel run completed
    std::string error;                 ///< failure reason when !simulated
    std::optional<double> detect_time; ///< earliest detection instant
    double sim_seconds = 0.0;          ///< kernel wall time
    std::size_t nr_iterations = 0;
    std::size_t matrix_size = 0;       ///< MNA unknowns (source model grows it)
    std::size_t steps_saved = 0;       ///< grid steps skipped by early abort
    /// Companion steps the kernel actually solved (an adaptive step spanning
    /// several grid intervals counts once) and grid samples the adaptive
    /// controller filled by interpolation instead of a solve.
    std::size_t steps_integrated = 0;
    std::size_t steps_interpolated = 0;
    /// Incremental-kernel counters: Newton solves that reused the previous
    /// factorization (modified-Newton bypass) and sparse numeric
    /// refactorizations on the reused pattern (0 on the dense path).
    std::size_t bypass_solves = 0;
    std::size_t sparse_refactors = 0;
    /// Provenance: the verdict was carried from a baseline store by the
    /// incremental cross-revision engine instead of being simulated in the
    /// campaign that wrote this record (v4 stores persist the flag).
    bool carried = false;
    /// Campaign-shared symbolic kernel (v5): MOS evaluations skipped by the
    /// per-device bypass, whether this kernel build adopted the campaign's
    /// shared elimination order, and the sparse time split (one-time
    /// analyses vs pattern-reused refactors).
    std::size_t device_stamp_skips = 0;
    std::size_t symbolic_cache_hits = 0;
    double ordering_seconds = 0.0;
    double numeric_seconds = 0.0;
    /// Analysis-specific detection metric (v5): worst dB deviation for an
    /// AC campaign record, worst |dV| for a DC screen record, unused (0)
    /// for transient records -- detect_time likewise holds the analysis'
    /// own coordinate (seconds / hertz / 0-at-detection respectively).
    double metric = 0.0;
    /// Failure containment (v6): how many simulation attempts this fault
    /// consumed (1 = first try; >1 means the retry/degradation ladder
    /// ran), whether the fault retired `quarantined` (every rung of the
    /// ladder failed -- a verdict, carried across revisions like any
    /// other), and the per-attempt failure log ("attempt K [config]:
    /// error; ...", empty when the first attempt succeeded).
    std::uint32_t attempts = 1;
    bool quarantined = false;
    std::string retry_log;
};

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;

/// FNV-1a 64-bit rolling hash (pass the previous result as `h` to chain).
std::uint64_t fnv1a(const void* data, std::size_t len,
                    std::uint64_t h = kFnvOffsetBasis);
std::uint64_t fnv1a(const std::string& s,
                    std::uint64_t h = kFnvOffsetBasis);

/// How far an append is pushed toward stable storage before it returns.
///
/// Durability contract:
///  * Flush (default): every append is flushed to the kernel (write(2)
///    semantics) before returning.  A process kill or crash after append
///    loses nothing; the trailing-record trim covers a kill *mid*-append.
///    Power loss may lose recently appended records still in the page
///    cache -- the log stays well-formed, so a resume re-simulates them.
///  * Fsync: every append additionally fsyncs the file, and close fsyncs
///    once more.  Records survive power loss at the cost of one fsync
///    per fault retired.
/// In both modes the log tolerates truncation at any byte: loading stops
/// at the first short or corrupt record and trims back to the last good
/// byte, so the worst case is always "re-simulate the torn fault".
enum class Durability : std::uint8_t { Flush, Fsync };

/// Append-only result log.  Thread-safe: workers append concurrently.
class ResultStore {
public:
    /// Open (creating if needed) the store at `path` for the campaign
    /// identified by `manifest`.  Existing records are loaded when the
    /// stored manifest matches; otherwise the file is restarted.  A
    /// trailing partial record is trimmed.  Throws catlift::Error on I/O
    /// failure.
    ResultStore(std::string path, std::uint64_t manifest,
                Durability durability = Durability::Flush);
    ~ResultStore();

    /// Records recovered from disk at open (file order).
    const std::vector<FaultSimResult>& loaded() const { return loaded_; }

    /// Append one result and flush (and, under Durability::Fsync, sync)
    /// it to disk.  Failpoint site `store.append` (torn / torn_crash /
    /// generic actions) injects the I/O failures the containment tests
    /// exercise.
    void append(const FaultSimResult& r);

    const std::string& path() const { return path_; }
    std::uint64_t manifest() const { return manifest_; }

private:
    void sync_to_disk();  ///< fsync the file (Durability::Fsync only)

    // path_/manifest_/durability_/loaded_ are immutable after the
    // constructor; only the append path is concurrent, so the log stream
    // is the one guarded field (the constructor and destructor touch it
    // before/after the store is shared -- clang's analysis exempts them).
    std::string path_;
    std::uint64_t manifest_ = 0;
    Durability durability_ = Durability::Flush;
    std::vector<FaultSimResult> loaded_;
    Mutex mu_;
    std::ofstream out_ CATLIFT_GUARDED_BY(mu_);
};

/// Read-only view of a store file: the manifest it was written under plus
/// every intact record.  Unlike opening a ResultStore, loading a snapshot
/// never truncates, restarts or locks the file -- the incremental engine
/// uses it to read a *baseline* store whose manifest intentionally differs
/// from the campaign about to run.
struct StoreSnapshot {
    std::uint64_t manifest = 0;
    std::vector<FaultSimResult> records;
};

/// Load a snapshot of the store at `path`.  Returns std::nullopt when the
/// file is missing, unreadable, or not a current-version store; a trailing
/// torn record is ignored exactly as ResultStore's loader would.
std::optional<StoreSnapshot> load_store(const std::string& path);

/// The exact header bytes a fresh ResultStore writes for `manifest`.
std::string store_header(std::uint64_t manifest);

/// One record (length + payload + checksum), byte-identical to what
/// ResultStore::append writes.  The shard merge pass composes a canonical
/// store from these directly, bypassing the append path (and its
/// `store.append` failpoint site) so a merge can never be torn by an
/// injection aimed at a worker.
std::string encode_record(const FaultSimResult& r);

/// fsync the directory containing `path`, so a freshly created file's
/// directory entry itself survives power loss (fsync on the file alone
/// does not cover the rename/create in its parent).  Best-effort no-op
/// off POSIX.
void sync_parent_directory(const std::string& path);

/// Outcome of an explicit offline repair (anafaultc --repair-store).
struct RepairReport {
    bool header_ok = false;        ///< magic/version/manifest intact
    std::uint64_t manifest = 0;
    std::size_t records_kept = 0;  ///< intact records preserved
    std::size_t bytes_total = 0;   ///< file size before the repair
    std::size_t bytes_kept = 0;    ///< size after trimming to last good byte
};

/// Trim the store at `path` back to its last intact record -- the same
/// recovery ResultStore performs silently on open, surfaced as an explicit
/// command that reports what was kept and dropped.  A file without a valid
/// header is left untouched (header_ok=false: nothing recoverable).
/// Throws catlift::Error when the file does not exist.
RepairReport repair_store(const std::string& path);

} // namespace catlift::batch
