// catlift/batch/fabric.h
//
// Crash-isolated multi-process campaign fabric (the process-level
// counterpart of batch/scheduler.h's thread pool).  The probability-
// ordered fault queue is sharded by fault-id range across N worker
// *processes*; each worker runs the ordinary campaign runner into its own
// append-only store shard (batch/shard.h), and a supervisor loop keeps
// the campaign alive through anything a fault can do to a worker:
//
//   spawn ----> running --(exit 0)----------------------> done
//                 |  ^
//    (crash, --->|  |  backoff (exponential, capped)
//     nonzero    v  |
//     exit,     death --(deaths > max_deaths_per_range)-> failed
//     heartbeat   |
//     timeout)    +--(same in-flight fault at two consecutive
//                     deaths)--> quarantine record appended to the
//                     shard; the restarted worker resumes past it
//
// Workers report liveness and progress over a pipe: fixed 8-byte beats
// (kind, fault id), written atomically (<= PIPE_BUF).  A worker that goes
// silent for `worker_timeout_s` is SIGKILLed and treated as a death.
// Because every fault's start and retirement is beat-reported, the
// "bisection" of a poison fault degenerates to exact identification: the
// in-flight fault at the moment of death is the only candidate, and two
// consecutive deaths pointing at the same fault convict it.  The
// supervisor then appends a `quarantined` verdict (PR 8's containment
// vocabulary: attempts + retry_log) to the dead worker's shard under the
// campaign manifest, so the restarted worker's resume pass skips it and
// the campaign converges even with a deterministically-crashing fault.
//
// The fabric is deliberately ignorant of circuits and faults -- it moves
// fault *ids* and argv vectors, so tests can supervise /bin/sh scripts
// and anafaultc can self-exec real workers through the same loop.

#pragma once

#include "batch/result_store.h"
#include "obs/events.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace catlift::batch {

/// Contiguous fault-id range owned by one worker slot.
struct FaultRange {
    int lo = 0;              ///< first fault id (inclusive)
    int hi = 0;              ///< last fault id (inclusive)
    std::size_t count = 0;   ///< fault ids from the queue in [lo, hi]
};

/// Split the sorted fault ids into at most `workers` contiguous ranges of
/// near-equal count (the queue is probability-ordered by construction --
/// lift::FaultList::rank() renumbers ids in rank order -- so equal count
/// is equal expected work).  Fewer ranges come back when there are fewer
/// ids than workers.
std::vector<FaultRange> partition_fault_ranges(const std::vector<int>& ids,
                                               unsigned workers);

struct FabricOptions {
    unsigned workers = 2;
    /// A worker silent for this long is presumed wedged and SIGKILLed.
    double worker_timeout_s = 30.0;
    /// Respawn backoff: base * 2^(deaths-1), capped.
    double backoff_base_s = 0.1;
    double backoff_cap_s = 5.0;
    /// A range whose worker dies more than this many times is abandoned
    /// (FabricReport::completed turns false).
    int max_deaths_per_range = 8;
    /// Durability of the quarantine records the supervisor appends.
    Durability durability = Durability::Flush;
};

/// Everything a WorkerCommand needs to build one worker's argv.
struct WorkerSlot {
    std::size_t slot = 0;
    FaultRange range;
    std::string shard;       ///< shard_path(store_base, slot)
    int heartbeat_fd = 0;    ///< child-side fd the worker must beat on
    int spawn_index = 0;     ///< 0 on the first spawn, +1 per respawn
};

/// argv (argv[0] = executable) for one spawn of one slot.
using WorkerCommand =
    std::function<std::vector<std::string>(const WorkerSlot&)>;

/// Builds the `quarantined` verdict record for a convicted poison fault
/// (the fabric knows ids, not descriptions/probabilities -- the campaign
/// layer fills those in).
using PoisonRecord = std::function<FaultSimResult(
    int fault_id, int deaths, const std::string& retry_log)>;

struct SlotReport {
    std::size_t slot = 0;
    FaultRange range;
    std::string shard;
    int spawns = 0;           ///< successful process launches
    int spawn_failures = 0;   ///< launch attempts that failed outright
    int deaths = 0;           ///< crashes, nonzero exits, timeouts
    int timeouts = 0;         ///< deaths caused by heartbeat silence
    bool completed = false;   ///< a worker exited 0 for this range
    std::vector<int> poisoned;  ///< fault ids quarantined on this slot
};

struct FabricReport {
    bool completed = false;   ///< every slot completed its range
    std::size_t spawns = 0;
    std::size_t spawn_failures = 0;
    std::size_t deaths = 0;
    std::size_t timeouts = 0;
    std::size_t poisoned = 0;
    std::vector<SlotReport> slots;
};

/// Run the supervision loop to completion (or to per-range abandonment).
/// Failpoint sites: `worker.spawn` (generic actions fail the launch) and
/// `fabric.heartbeat` (`torn` drops incoming beats, driving the timeout
/// path).  POSIX only; throws catlift::Error elsewhere.
FabricReport run_fabric(const std::vector<int>& fault_ids,
                        std::uint64_t manifest,
                        const std::string& store_base,
                        const WorkerCommand& command,
                        const PoisonRecord& poison_record,
                        const FabricOptions& opt = {});

// ---------------------------------------------------------------------------
// Worker side of the heartbeat channel.

/// The fd the supervisor dup2s the pipe's write end onto in every child.
inline constexpr int kHeartbeatFd = 3;

enum class BeatKind : std::int32_t {
    Alive = 0,         ///< periodic liveness tick (fault id -1)
    FaultStarted = 1,  ///< fault id entered simulation
    FaultRetired = 2,  ///< fault id got a verdict (simulated or resumed)
};

/// Worker-side beat writer: a background thread ticks Alive every
/// `interval_s`, and the campaign reports fault starts/retirements
/// inline.  Writes are single 8-byte frames (atomic under PIPE_BUF);
/// a vanished supervisor (EPIPE) is ignored -- the worker finishes its
/// shard regardless.  fault_started() is also the `worker.fault`
/// failpoint site: arming `worker.fault=poison:ID` kills the process
/// (exit 137) the moment fault ID starts, the deterministic poison
/// fault of the containment tests.
class HeartbeatEmitter {
public:
    HeartbeatEmitter(int fd, double interval_s = 0.05);
    ~HeartbeatEmitter();

    void fault_started(int fault_id);
    void fault_retired(int fault_id);

private:
    void beat(BeatKind kind, std::int32_t fault_id);

    int fd_;
    std::atomic<bool> stop_{false};
    std::thread ticker_;
};

/// Event sink bridging the campaign runner's `fault_started` /
/// `fault_retired` / `fault_resumed` / `fault_quarantined` events onto a
/// HeartbeatEmitter, so the runner needs no fabric awareness at all.
class HeartbeatSink : public obs::EventSink {
public:
    explicit HeartbeatSink(HeartbeatEmitter& hb) : hb_(hb) {}
    void on_event(const char* name, std::uint64_t ts_ns,
                  const std::vector<obs::TraceArg>& fields) override;

private:
    HeartbeatEmitter& hb_;
};

} // namespace catlift::batch
