#include "batch/shard.h"

#include "geom/base.h"
#include "obs/obs.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace catlift::batch {

namespace fs = std::filesystem;

std::string shard_path(const std::string& base, std::size_t k) {
    return base + ".shard-" + std::to_string(k);
}

std::vector<std::string> list_shards(const std::string& base) {
    std::vector<std::pair<std::size_t, std::string>> found;
    const fs::path base_path(base);
    fs::path dir = base_path.parent_path();
    if (dir.empty()) dir = ".";
    const std::string prefix = base_path.filename().string() + ".shard-";
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind(prefix, 0) != 0) continue;
        const std::string tail = name.substr(prefix.size());
        if (tail.empty() ||
            tail.find_first_not_of("0123456789") != std::string::npos)
            continue;
        found.emplace_back(std::stoull(tail),
                           (base_path.parent_path() / name).string());
    }
    std::sort(found.begin(), found.end());
    std::vector<std::string> out;
    out.reserve(found.size());
    for (auto& [k, path] : found) out.push_back(std::move(path));
    return out;
}

ShardMergeReport merge_shards(const std::string& dest, std::uint64_t manifest,
                              const std::vector<std::string>& shards,
                              Durability durability) {
    require(!dest.empty(), "merge-shards: empty canonical store path");
    ShardMergeReport rep;

    // First record per fault id wins; canonical store before any shard so
    // a fault already merged keeps its original record forever.
    std::map<int, FaultSimResult> by_id;
    auto take = [&](std::vector<FaultSimResult>&& records) {
        for (auto& r : records) {
            ++rep.records_in;
            if (!by_id.emplace(r.fault_id, std::move(r)).second)
                ++rep.duplicates;
        }
    };

    std::string existing;
    {
        std::ifstream in(dest, std::ios::binary);
        if (in.good())
            existing.assign(std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>());
    }
    if (!existing.empty()) {
        auto snap = load_store(dest);
        // A canonical store from another campaign is restarted, the same
        // treatment ResultStore gives a foreign file on open.
        if (snap && snap->manifest == manifest) take(std::move(snap->records));
    }

    for (const std::string& path : shards) {
        auto snap = load_store(path);
        require(snap.has_value(),
                "merge-shards: unreadable or non-store shard: " + path);
        require(snap->manifest == manifest,
                "merge-shards: shard " + path +
                    " was written under a different campaign manifest");
        take(std::move(snap->records));
        ++rep.shards_merged;
    }
    rep.records_kept = by_id.size();

    // Compose the merged image: header + records sorted by fault id (the
    // std::map iteration order), which is what makes a re-merge of the
    // same inputs byte-identical.
    std::string image = store_header(manifest);
    for (const auto& [id, r] : by_id) image += encode_record(r);

    if (image == existing) return rep;  // no-op: leave dest untouched

    // Replace atomically so a crash mid-merge can never destroy the
    // canonical store: the old file survives until the rename commits.
    const std::string tmp = dest + ".merge-tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        require(out.good(), "merge-shards: cannot write " + tmp);
        out.write(image.data(), static_cast<std::streamsize>(image.size()));
        out.flush();
        require(out.good(), "merge-shards: write failed: " + tmp);
    }
#if defined(__unix__) || defined(__APPLE__)
    if (durability == Durability::Fsync) {
        const int fd = ::open(tmp.c_str(), O_WRONLY);
        if (fd >= 0) {
            const bool ok = ::fsync(fd) == 0;
            ::close(fd);
            require(ok, "merge-shards: fsync failed: " + tmp);
        }
    }
#endif
    std::error_code ec;
    fs::rename(tmp, dest, ec);
    require(!ec, "merge-shards: rename to " + dest + " failed: " +
                     ec.message());
    if (durability == Durability::Fsync) sync_parent_directory(dest);
    rep.changed = true;

    if (obs::metrics_enabled()) {
        obs::Registry& reg = obs::Registry::global();
        reg.counter("store.shard_merges").add(1);
        reg.counter("store.merge_duplicates").add(rep.duplicates);
    }
    if (obs::events_enabled())
        obs::emit_event(
            "shards_merged",
            {obs::arg("shards", static_cast<std::int64_t>(rep.shards_merged)),
             obs::arg("records",
                      static_cast<std::int64_t>(rep.records_kept)),
             obs::arg("duplicates",
                      static_cast<std::int64_t>(rep.duplicates))});
    return rep;
}

} // namespace catlift::batch
