#include "lift/fault.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <sstream>

namespace catlift::lift {

const char* to_string(FaultKind k) {
    switch (k) {
        case FaultKind::LocalShort: return "local_short";
        case FaultKind::GlobalShort: return "global_short";
        case FaultKind::LineOpen: return "line_open";
        case FaultKind::SplitNode: return "split_node";
        case FaultKind::StuckOpen: return "stuck_open";
    }
    return "?";
}

FaultKind fault_kind_from_string(const std::string& s) {
    for (FaultKind k : {FaultKind::LocalShort, FaultKind::GlobalShort,
                        FaultKind::LineOpen, FaultKind::SplitNode,
                        FaultKind::StuckOpen})
        if (s == to_string(k)) return k;
    throw Error("unknown fault kind: " + s);
}

std::string Fault::describe() const {
    std::ostringstream os;
    os << '#' << id << ' ';
    switch (kind) {
        case FaultKind::LocalShort:
        case FaultKind::GlobalShort:
            os << "BRI " << mechanism << ' ' << net_a << "->" << net_b;
            break;
        case FaultKind::LineOpen:
        case FaultKind::SplitNode:
            os << "OPEN " << mechanism << ' ' << net << " [";
            for (std::size_t i = 0; i < group_b.size(); ++i) {
                if (i) os << ',';
                os << group_b[i].device << ':' << group_b[i].terminal;
            }
            os << ']';
            break;
        case FaultKind::StuckOpen:
            os << "SOP " << mechanism << ' ' << victim.device << ':'
               << victim.terminal;
            break;
    }
    return os.str();
}

void FaultList::rank() {
    std::stable_sort(faults.begin(), faults.end(),
                     [](const Fault& a, const Fault& b) {
                         return a.probability > b.probability;
                     });
    int id = 1;
    for (Fault& f : faults) f.id = id++;
}

double FaultList::total_probability() const {
    return std::accumulate(
        faults.begin(), faults.end(), 0.0,
        [](double s, const Fault& f) { return s + f.probability; });
}

std::size_t FaultList::count(FaultKind k) const {
    return static_cast<std::size_t>(
        std::count_if(faults.begin(), faults.end(),
                      [&](const Fault& f) { return f.kind == k; }));
}

std::size_t FaultList::shorts() const {
    return count(FaultKind::LocalShort) + count(FaultKind::GlobalShort);
}

std::size_t FaultList::opens() const {
    return count(FaultKind::LineOpen) + count(FaultKind::SplitNode) +
           count(FaultKind::StuckOpen);
}

// ---------------------------------------------------------------------------
// Diff

std::string electrical_signature(const Fault& f) {
    std::string k = std::string(to_string(f.kind)) + "|";
    switch (f.kind) {
        case FaultKind::LocalShort:
        case FaultKind::GlobalShort:
            k += std::min(f.net_a, f.net_b) + ">" + std::max(f.net_a, f.net_b);
            break;
        case FaultKind::LineOpen:
        case FaultKind::SplitNode:
            k += f.net + "[";
            for (const TerminalRef& t : f.group_b)
                k += t.device + ":" + std::to_string(t.terminal) + ",";
            k += "]";
            break;
        case FaultKind::StuckOpen:
            k += f.victim.device + ":" + std::to_string(f.victim.terminal);
            break;
    }
    return k;
}

FaultListDiff diff_faultlists(const FaultList& a, const FaultList& b,
                              double rel_tol) {
    FaultListDiff d;
    std::map<std::string, const Fault*> bk;
    for (const Fault& f : b.faults) bk[electrical_signature(f)] = &f;
    std::map<std::string, const Fault*> ak;
    for (const Fault& f : a.faults) ak[electrical_signature(f)] = &f;

    for (const Fault& f : a.faults) {
        auto it = bk.find(electrical_signature(f));
        if (it == bk.end()) {
            d.only_a.push_back(f);
        } else {
            const double pa = f.probability, pb = it->second->probability;
            const double ref = std::max(std::abs(pa), std::abs(pb));
            if (ref > 0 && std::abs(pa - pb) / ref > rel_tol)
                d.probability_changed.emplace_back(f, *it->second);
            else
                d.carried.emplace_back(f, *it->second);
        }
    }
    for (const Fault& f : b.faults)
        if (!ak.count(electrical_signature(f))) d.only_b.push_back(f);
    return d;
}

// ---------------------------------------------------------------------------
// Text IO

void write_faultlist(std::ostream& os, const FaultList& fl) {
    os << "faultlist " << (fl.circuit.empty() ? "unnamed" : fl.circuit)
       << "\n";
    for (const Fault& f : fl.faults) {
        os << "fault " << f.id << ' ' << to_string(f.kind) << ' '
           << f.mechanism << ' ' << f.probability << ' ';
        switch (f.kind) {
            case FaultKind::LocalShort:
            case FaultKind::GlobalShort:
                os << "short " << f.net_a << ' ' << f.net_b;
                break;
            case FaultKind::LineOpen:
            case FaultKind::SplitNode:
                os << "open " << f.net;
                for (const TerminalRef& t : f.group_b)
                    os << ' ' << t.device << ':' << t.terminal;
                break;
            case FaultKind::StuckOpen:
                os << "stuck " << f.victim.device << ':' << f.victim.terminal;
                break;
        }
        os << "\n";
    }
    os << "end\n";
}

std::string write_faultlist(const FaultList& fl) {
    std::ostringstream os;
    write_faultlist(os, fl);
    return os.str();
}

namespace {

TerminalRef parse_terminal(const std::string& tok, int line_no) {
    const auto colon = tok.rfind(':');
    require(colon != std::string::npos && colon + 1 < tok.size(),
            "faultlist line " + std::to_string(line_no) +
                ": bad terminal ref '" + tok + "'");
    TerminalRef t;
    t.device = tok.substr(0, colon);
    t.terminal = std::stoi(tok.substr(colon + 1));
    return t;
}

} // namespace

FaultList read_faultlist(std::istream& is) {
    FaultList fl;
    std::string line;
    int line_no = 0;
    bool saw_header = false, saw_end = false;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#') continue;
        std::istringstream ls(line);
        std::string kw;
        ls >> kw;
        if (kw == "faultlist") {
            ls >> fl.circuit;
            saw_header = true;
        } else if (kw == "fault") {
            Fault f;
            std::string kind, variant;
            require(static_cast<bool>(ls >> f.id >> kind >> f.mechanism >>
                                      f.probability >> variant),
                    "faultlist line " + std::to_string(line_no) +
                        ": malformed fault card");
            f.kind = fault_kind_from_string(kind);
            if (variant == "short") {
                require(static_cast<bool>(ls >> f.net_a >> f.net_b),
                        "faultlist: short needs two nets");
            } else if (variant == "open") {
                require(static_cast<bool>(ls >> f.net),
                        "faultlist: open needs a net");
                std::string tok;
                while (ls >> tok) f.group_b.push_back(parse_terminal(tok, line_no));
                require(!f.group_b.empty(),
                        "faultlist: open needs at least one terminal");
            } else if (variant == "stuck") {
                std::string tok;
                require(static_cast<bool>(ls >> tok),
                        "faultlist: stuck needs a terminal");
                f.victim = parse_terminal(tok, line_no);
            } else {
                throw Error("faultlist line " + std::to_string(line_no) +
                            ": unknown variant " + variant);
            }
            fl.faults.push_back(std::move(f));
        } else if (kw == "end") {
            saw_end = true;
            break;
        } else {
            throw Error("faultlist line " + std::to_string(line_no) +
                        ": unknown keyword " + kw);
        }
    }
    require(saw_header && saw_end, "faultlist stream missing header or end");
    return fl;
}

FaultList read_faultlist_text(const std::string& text) {
    std::istringstream is(text);
    return read_faultlist(is);
}

} // namespace catlift::lift
