#include "lift/extract_faults.h"

#include "geom/spatial_index.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace catlift::lift {

using defects::FailureMode;
using defects::Mechanism;
using extract::CutCluster;
using extract::Extraction;
using extract::Fragment;
using geom::Coord;
using geom::Rect;
using layout::Layer;

namespace {

/// One edge of a net's connectivity graph.
struct NetEdge {
    std::size_t a, b;   ///< fragment indices
    int cluster = -1;   ///< cut cluster index, -1 for same-layer touch
};

/// Everything the open/split analysis needs about the extracted circuit.
struct NetGraph {
    const Extraction* ex;
    std::vector<std::vector<NetEdge>> edges;           // per net
    std::vector<std::vector<std::size_t>> frags;       // per net
    std::map<std::size_t, std::vector<TerminalRef>> anchors;  // frag -> terms
    std::set<std::size_t> port_frags;                  // labelled fragments

    explicit NetGraph(const Extraction& e, const layout::Layout& lo)
        : ex(&e) {
        const std::size_t n_nets = e.net_names.size();
        edges.resize(n_nets);
        frags.resize(n_nets);
        for (std::size_t i = 0; i < e.fragments.size(); ++i)
            frags[static_cast<std::size_t>(e.fragments[i].net)].push_back(i);

        // Same-layer touching pairs (within each net).
        for (std::size_t net = 0; net < n_nets; ++net) {
            const auto& fs = frags[net];
            for (std::size_t i = 0; i < fs.size(); ++i) {
                for (std::size_t j = i + 1; j < fs.size(); ++j) {
                    const Fragment& fa = e.fragments[fs[i]];
                    const Fragment& fb = e.fragments[fs[j]];
                    if (fa.layer == fb.layer && fa.rect.touches(fb.rect))
                        edges[net].push_back(NetEdge{fs[i], fs[j], -1});
                }
            }
        }
        // Cut cluster edges.
        for (std::size_t c = 0; c < e.cuts.size(); ++c) {
            const CutCluster& cc = e.cuts[c];
            const int net = e.fragments[cc.frag_a].net;
            edges[static_cast<std::size_t>(net)].push_back(
                NetEdge{cc.frag_a, cc.frag_b, static_cast<int>(c)});
        }
        // Terminal anchors.
        for (const auto& m : e.mosfets) {
            anchors[m.frag_drain].push_back({m.name, 0});
            anchors[m.frag_gate].push_back({m.name, 1});
            anchors[m.frag_source].push_back({m.name, 2});
        }
        for (const auto& c : e.caps) {
            anchors[c.frag_bottom].push_back({c.name, 0});
            anchors[c.frag_top].push_back({c.name, 1});
        }
        // Port anchors (labels).
        for (const layout::Label& lb : lo.labels) {
            for (std::size_t i = 0; i < e.fragments.size(); ++i) {
                const Fragment& f = e.fragments[i];
                if (f.layer == lb.layer && f.rect.contains(lb.at)) {
                    port_frags.insert(i);
                    break;
                }
            }
        }
    }

    /// Connected components of one net's fragments with some edges removed.
    /// `skip` returns true for edges to exclude.  Returns frag -> component.
    template <typename Skip>
    std::map<std::size_t, int> components(int net, Skip skip) const {
        const auto& fs = frags[static_cast<std::size_t>(net)];
        std::map<std::size_t, std::size_t> parent;
        for (std::size_t f : fs) parent[f] = f;
        std::function<std::size_t(std::size_t)> find =
            [&](std::size_t x) -> std::size_t {
            while (parent[x] != x) x = parent[x] = parent[parent[x]];
            return x;
        };
        for (const NetEdge& ed : edges[static_cast<std::size_t>(net)]) {
            if (skip(ed)) continue;
            parent[find(ed.a)] = find(ed.b);
        }
        std::map<std::size_t, int> comp;
        std::map<std::size_t, int> root_id;
        for (std::size_t f : fs) {
            const std::size_t r = find(f);
            auto [it, ins] = root_id.emplace(r, static_cast<int>(root_id.size()));
            (void)ins;
            comp[f] = it->second;
        }
        return comp;
    }

    /// Terminals anchored on any fragment of a component set.
    std::vector<TerminalRef> terminals_in(
        const std::map<std::size_t, int>& comp,
        const std::set<int>& comps) const {
        std::vector<TerminalRef> out;
        for (const auto& [frag, c] : comp) {
            if (!comps.count(c)) continue;
            auto it = anchors.find(frag);
            if (it == anchors.end()) continue;
            out.insert(out.end(), it->second.begin(), it->second.end());
        }
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
        return out;
    }

    bool ports_in(const std::map<std::size_t, int>& comp,
                  const std::set<int>& comps) const {
        for (const auto& [frag, c] : comp)
            if (comps.count(c) && port_frags.count(frag)) return true;
        return false;
    }
};

/// Attachment of something to a fragment, projected on its long axis.
struct Attachment {
    Coord lo, hi;  ///< interval along the long axis
    enum class Kind { Frag, Terminal, Port } kind;
    std::size_t frag = 0;   // Kind::Frag: the attached fragment
    TerminalRef term;       // Kind::Terminal
};

/// Merge-key for faults with identical electrical signature.  The
/// mechanism is deliberately NOT part of the key: a metal1 bridge and a
/// metal2 bridge between the same two nets are one electrical fault for
/// AnaFAULT; the merged fault carries the mechanism contributing the most
/// probability as its label.
std::string fault_key(const Fault& f) {
    std::string k = std::string(to_string(f.kind)) + "|";
    switch (f.kind) {
        case FaultKind::LocalShort:
        case FaultKind::GlobalShort: {
            const auto& lo = std::min(f.net_a, f.net_b);
            const auto& hi = std::max(f.net_a, f.net_b);
            k += lo + ">" + hi;
            break;
        }
        case FaultKind::LineOpen:
        case FaultKind::SplitNode: {
            k += f.net + "[";
            for (const TerminalRef& t : f.group_b)
                k += t.device + ":" + std::to_string(t.terminal) + ",";
            k += "]";
            break;
        }
        case FaultKind::StuckOpen:
            k += f.victim.device + ":" + std::to_string(f.victim.terminal);
            break;
    }
    return k;
}

} // namespace

LiftResult extract_faults(const layout::Layout& lo,
                          const layout::Technology& tech,
                          const LiftOptions& opt) {
    LiftResult res;
    res.extraction = extract::extract(lo, tech, opt.extract_opt);
    const Extraction& ex = res.extraction;
    const defects::DefectModel& model = opt.model;
    const defects::DefectStatistics& stats = model.stats();
    const auto xmax = static_cast<Coord>(model.max_defect());

    NetGraph graph(ex, lo);
    std::map<std::string, Fault> merged;  // key -> accumulated fault
    // Per-mechanism contributions of each merged fault; the dominant one
    // becomes the fault's mechanism label.
    std::map<std::string, std::map<std::string, double>> contrib;

    auto accumulate = [&](Fault f) {
        const std::string key = fault_key(f);
        contrib[key][f.mechanism] += f.probability;
        auto it = merged.find(key);
        if (it == merged.end())
            merged.emplace(key, std::move(f));
        else
            it->second.probability += f.probability;
    };

    // Classify an open by the terminals it isolates: one MOS terminal is a
    // transistor stuck-open regardless of whether the failing site was a
    // contact cluster or a line span.
    auto classify_open = [&](Fault& f) {
        if (f.group_b.size() == 1) {
            const TerminalRef& t = f.group_b[0];
            for (const auto& m : ex.mosfets) {
                if (m.name == t.device) {
                    f.kind = FaultKind::StuckOpen;
                    f.victim = t;
                    return;
                }
            }
            f.kind = FaultKind::LineOpen;
        } else {
            f.kind = FaultKind::SplitNode;
        }
    };

    // Classification helper for shorts.
    auto short_kind = [&](const std::string& a, const std::string& b) {
        if (!opt.net_blocks.empty()) {
            auto ba = opt.net_blocks.find(a);
            auto bb = opt.net_blocks.find(b);
            const std::string block_a =
                ba == opt.net_blocks.end() ? "?" : ba->second;
            const std::string block_b =
                bb == opt.net_blocks.end() ? "?" : bb->second;
            if (block_a == "supply" || block_b == "supply")
                return FaultKind::GlobalShort;
            return block_a == block_b ? FaultKind::LocalShort
                                      : FaultKind::GlobalShort;
        }
        // Fallback: a bridge is local iff the nets share a device.
        for (const auto& d : ex.circuit.devices) {
            bool hit_a = false, hit_b = false;
            for (const std::string& n : d.nodes) {
                hit_a |= n == a;
                hit_b |= n == b;
            }
            if (hit_a && hit_b) return FaultKind::LocalShort;
        }
        return FaultKind::GlobalShort;
    };

    // ---- Bridges -------------------------------------------------------
    for (int li = 0; li < static_cast<int>(layout::kLayerCount); ++li) {
        const Layer layer = static_cast<Layer>(li);
        const Mechanism* mech = stats.find(layer, FailureMode::Short);
        if (!mech) continue;
        std::vector<std::size_t> ids;
        for (std::size_t i = 0; i < ex.fragments.size(); ++i)
            if (ex.fragments[i].layer == layer) ids.push_back(i);
        geom::SpatialIndex idx(std::max<Coord>(xmax, 1000));
        for (std::size_t i : ids) idx.insert(i, ex.fragments[i].rect);
        for (std::size_t i : ids) {
            const Fragment& fa = ex.fragments[i];
            for (std::size_t j : idx.neighbours(fa.rect, xmax)) {
                if (j <= i) continue;
                const Fragment& fb = ex.fragments[j];
                if (fb.layer != layer || fb.net == fa.net) continue;
                const geom::Point gaps = geom::axis_gaps(fa.rect, fb.rect);
                if (gaps.x > 0 && gaps.y > 0) continue;  // diagonal
                const Coord spacing = std::max(gaps.x, gaps.y);
                if (spacing <= 0 || spacing >= xmax) continue;
                const Coord facing = gaps.x > 0
                                         ? geom::y_overlap(fa.rect, fb.rect)
                                         : geom::x_overlap(fa.rect, fb.rect);
                if (facing <= 0) continue;
                ++res.stats.bridge_sites;
                Fault f;
                f.mechanism = mech->name;
                f.net_a = ex.net_name(fa.net);
                f.net_b = ex.net_name(fb.net);
                if (f.net_a > f.net_b) std::swap(f.net_a, f.net_b);
                f.kind = short_kind(f.net_a, f.net_b);
                f.probability = model.bridge_probability(
                    *mech, static_cast<double>(facing),
                    static_cast<double>(spacing));
                accumulate(std::move(f));
            }
        }
    }

    // ---- Line opens / split nodes ---------------------------------------
    for (std::size_t fi = 0; fi < ex.fragments.size(); ++fi) {
        const Fragment& f = ex.fragments[fi];
        const Mechanism* mech = stats.find(f.layer, FailureMode::Open);
        if (!mech) continue;

        // Long axis of the fragment.
        const bool along_x = f.rect.width() >= f.rect.height();
        const Coord width = along_x ? f.rect.height() : f.rect.width();
        auto project = [&](const Rect& r) -> std::pair<Coord, Coord> {
            if (along_x)
                return {std::max(r.lo.x, f.rect.lo.x),
                        std::min(r.hi.x, f.rect.hi.x)};
            return {std::max(r.lo.y, f.rect.lo.y),
                    std::min(r.hi.y, f.rect.hi.y)};
        };

        // Collect attachments.
        std::vector<Attachment> att;
        for (const NetEdge& ed :
             graph.edges[static_cast<std::size_t>(f.net)]) {
            std::size_t other;
            Rect where;
            if (ed.a == fi) {
                other = ed.b;
            } else if (ed.b == fi) {
                other = ed.a;
            } else {
                continue;
            }
            where = ed.cluster >= 0
                        ? ex.cuts[static_cast<std::size_t>(ed.cluster)].bbox
                        : ex.fragments[other].rect;
            auto [lo_p, hi_p] = project(where);
            if (lo_p > hi_p) std::swap(lo_p, hi_p);
            att.push_back(
                {lo_p, hi_p, Attachment::Kind::Frag, other, TerminalRef{}});
        }
        // Device terminals anchored on this fragment (at the gate position).
        for (const auto& m : ex.mosfets) {
            if (m.frag_drain == fi || m.frag_gate == fi ||
                m.frag_source == fi) {
                auto [lo_p, hi_p] = project(m.gate);
                int term = m.frag_gate == fi ? 1 : (m.frag_drain == fi ? 0 : 2);
                att.push_back({lo_p, hi_p, Attachment::Kind::Terminal, 0,
                               TerminalRef{m.name, term}});
            }
        }
        for (const auto& c : ex.caps) {
            if (c.frag_bottom == fi || c.frag_top == fi) {
                // The plate is the anchor: use the whole fragment extent so
                // the plate body never ends up "cut off" from itself.
                att.push_back({project(f.rect).first, project(f.rect).second,
                               Attachment::Kind::Terminal, 0,
                               TerminalRef{c.name,
                                           c.frag_bottom == fi ? 0 : 1}});
            }
        }
        // Ports.
        if (graph.port_frags.count(fi)) {
            for (const layout::Label& lb : lo.labels) {
                if (lb.layer == f.layer && f.rect.contains(lb.at)) {
                    const Coord p = along_x ? lb.at.x : lb.at.y;
                    att.push_back({p, p, Attachment::Kind::Port, 0,
                                   TerminalRef{}});
                }
            }
        }
        if (att.size() < 2) continue;
        std::sort(att.begin(), att.end(),
                  [](const Attachment& a, const Attachment& b) {
                      return a.lo < b.lo || (a.lo == b.lo && a.hi < b.hi);
                  });

        // Components of the net without this fragment.
        auto comp = graph.components(f.net, [&](const NetEdge& ed) {
            return ed.a == fi || ed.b == fi;
        });
        comp.erase(fi);

        // Examine each free span between consecutive attachments.
        Coord covered_hi = att.front().hi;
        for (std::size_t i = 0; i + 1 < att.size(); ++i) {
            covered_hi = std::max(covered_hi, att[i].hi);
            const Coord gap = att[i + 1].lo - covered_hi;
            if (gap <= 0) continue;
            ++res.stats.open_sites;

            // Side assignment by sort order.
            std::set<int> comps_a, comps_b;
            std::vector<TerminalRef> term_a, term_b;
            bool port_a = false, port_b = false;
            bool redundant = false;
            for (std::size_t k = 0; k < att.size(); ++k) {
                const bool side_a = k <= i;
                const Attachment& a = att[k];
                switch (a.kind) {
                    case Attachment::Kind::Frag: {
                        const int c = comp.at(a.frag);
                        (side_a ? comps_a : comps_b).insert(c);
                        break;
                    }
                    case Attachment::Kind::Terminal:
                        (side_a ? term_a : term_b).push_back(a.term);
                        break;
                    case Attachment::Kind::Port:
                        (side_a ? port_a : port_b) = true;
                        break;
                }
            }
            // A component attached on both sides bypasses the cut.
            for (int c : comps_a)
                if (comps_b.count(c)) redundant = true;
            if (redundant) {
                ++res.stats.redundant_opens;
                continue;
            }
            auto ta = graph.terminals_in(comp, comps_a);
            auto tb = graph.terminals_in(comp, comps_b);
            term_a.insert(term_a.end(), ta.begin(), ta.end());
            term_b.insert(term_b.end(), tb.begin(), tb.end());
            port_a = port_a || graph.ports_in(comp, comps_a);
            port_b = port_b || graph.ports_in(comp, comps_b);
            if (term_a.empty() && !port_a) {
                ++res.stats.dangling_opens;
                continue;
            }
            if (term_b.empty() && !port_b) {
                ++res.stats.dangling_opens;
                continue;
            }
            // Side B: the side away from the ports (sources/observation
            // points keep the original node name).
            if (port_b && !port_a) {
                std::swap(term_a, term_b);
                std::swap(port_a, port_b);
            } else if (port_a == port_b && term_b.size() > term_a.size()) {
                std::swap(term_a, term_b);
            }
            if (term_b.empty()) {
                ++res.stats.dangling_opens;
                continue;
            }
            std::sort(term_b.begin(), term_b.end());
            term_b.erase(std::unique(term_b.begin(), term_b.end()),
                         term_b.end());

            Fault flt;
            flt.mechanism = mech->name;
            flt.net = ex.net_name(f.net);
            flt.group_b = term_b;
            classify_open(flt);
            flt.probability = model.open_probability(
                *mech, static_cast<double>(gap), static_cast<double>(width));
            accumulate(std::move(flt));
        }
    }

    // ---- Cut-cluster opens -----------------------------------------------
    for (std::size_t ci = 0; ci < ex.cuts.size(); ++ci) {
        const CutCluster& cc = ex.cuts[ci];
        std::optional<Layer> lower;
        if (cc.layer == Layer::Contact)
            lower = ex.fragments[cc.frag_b].layer;
        const Mechanism* mech =
            stats.find(cc.layer, FailureMode::Open, lower);
        if (!mech) continue;
        ++res.stats.cut_sites;

        const int net = ex.fragments[cc.frag_a].net;
        auto comp = graph.components(net, [&](const NetEdge& ed) {
            return ed.cluster == static_cast<int>(ci);
        });
        if (comp.at(cc.frag_a) == comp.at(cc.frag_b)) {
            ++res.stats.redundant_opens;
            continue;  // another path keeps the net together
        }
        const std::set<int> comps_a{comp.at(cc.frag_a)};
        const std::set<int> comps_b{comp.at(cc.frag_b)};
        auto term_a = graph.terminals_in(comp, comps_a);
        auto term_b = graph.terminals_in(comp, comps_b);
        bool port_a = graph.ports_in(comp, comps_a);
        bool port_b = graph.ports_in(comp, comps_b);
        if ((term_a.empty() && !port_a) || (term_b.empty() && !port_b)) {
            ++res.stats.dangling_opens;
            continue;
        }
        if (port_b && !port_a) {
            std::swap(term_a, term_b);
            std::swap(port_a, port_b);
        } else if (port_a == port_b && term_b.size() > term_a.size()) {
            std::swap(term_a, term_b);
        }
        if (term_b.empty()) {
            ++res.stats.dangling_opens;
            continue;
        }

        Fault flt;
        flt.mechanism = mech->name;
        flt.net = ex.net_name(net);
        flt.group_b = term_b;
        classify_open(flt);
        flt.probability = model.cut_probability(
            *mech, static_cast<double>(cc.bbox.width()),
            static_cast<double>(cc.bbox.height()));
        accumulate(std::move(flt));
    }

    // ---- Threshold, label, rank -------------------------------------------
    res.faults.circuit = lo.name;
    for (auto& [key, f] : merged) {
        if (f.probability < opt.p_min) {
            ++res.stats.dropped;
            res.stats.dropped_probability += f.probability;
            continue;
        }
        // Label with the mechanism contributing the most probability.
        const auto& by_mech = contrib.at(key);
        f.mechanism =
            std::max_element(by_mech.begin(), by_mech.end(),
                             [](const auto& a, const auto& b) {
                                 return a.second < b.second;
                             })
                ->first;
        res.faults.faults.push_back(std::move(f));
    }
    res.faults.rank();
    return res;
}

} // namespace catlift::lift
