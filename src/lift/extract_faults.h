// catlift/lift/extract_faults.h
//
// GLRFM -- "Global Layout Realistic Faults Mapping" (paper, ch. II/IV):
// the fault extraction performed on the final layout, simultaneously with
// circuit extraction.  For every failure mechanism of the defect statistics
// it enumerates the layout sites where a single spot defect changes the
// circuit topology, evaluates the critical area of each site against the
// defect size distribution, merges sites with identical electrical effect,
// and emits the ranked weighted fault list f1..fN with probabilities
// p1..pN (typically 1e-7 .. 1e-9).
//
// Site classes:
//  * bridges   -- facing conductor pairs on one layer closer than the
//    maximum defect size (includes the global short condition: any net
//    pair, not just terminals of one element);
//  * line opens -- free spans of a conductor between its attachment points;
//    cutting a span splits the net into the attachments on either side.
//    Spans that are bypassed by a redundant path cause no electrical
//    change and are discarded (counted in the statistics);
//  * cut opens -- contact/via clusters; a cluster whose loss disconnects
//    exactly one transistor terminal becomes a transistor stuck-open.

#pragma once

#include "defects/defects.h"
#include "extract/extractor.h"
#include "lift/fault.h"

#include <map>
#include <string>

namespace catlift::lift {

struct LiftOptions {
    defects::DefectModel model = defects::DefectModel::date95();

    /// Keep threshold: faults with probability below this are dropped from
    /// the list (they are recorded in the statistics).  The default sits at
    /// the knee that separates single-contact terminal kills (~1.4e-8) from
    /// redundant-junction kills (~0.7e-8) in the reference process, keeping
    /// the dominant bridging population plus the non-redundant contact
    /// opens -- the relevance cut of the paper's ch. IV.
    double p_min = 1.2e-8;

    /// Net -> functional block; bridges across blocks or involving the
    /// "supply" block are classified global.  When empty, a bridge is
    /// local iff the two nets share a device.
    std::map<std::string, std::string> net_blocks;

    extract::ExtractOptions extract_opt;
};

struct LiftStats {
    std::size_t bridge_sites = 0;    ///< raw facing-pair sites
    std::size_t open_sites = 0;      ///< raw line spans examined
    std::size_t cut_sites = 0;       ///< cut clusters examined
    std::size_t redundant_opens = 0; ///< opens bypassed by another path
    std::size_t dangling_opens = 0;  ///< opens with no device on one side
    std::size_t dropped = 0;         ///< faults below the keep threshold
    double dropped_probability = 0.0;
};

struct LiftResult {
    FaultList faults;
    LiftStats stats;
    extract::Extraction extraction;  ///< the simultaneous circuit extraction
};

/// Run GLRFM on a layout.
LiftResult extract_faults(const layout::Layout& lo,
                          const layout::Technology& tech,
                          const LiftOptions& opt = {});

} // namespace catlift::lift
