// catlift/lift/schematic_faults.h
//
// The two pre-layout fault lists of the paper's Fig. 1 funnel:
//
//  * all_schematic_faults -- "the complete set of possible single hard
//    faults on each component of the circuit" (paper, ch. II): every
//    terminal open and every terminal-pair short of every element, minus
//    pairs that are already connected by design (e.g. the six designed
//    gate-drain shorts of the VCO's diode-connected devices).  For the
//    paper's VCO this yields exactly 79 opens and 73 shorts.
//
//  * l2rfm_faults -- "Local Layout Realistic Faults Mapping" (paper,
//    [18]): the pre-layout reduction that weights each single-element
//    fault with the critical area of the element's *template* layout
//    (cell geometry without routing) and drops faults below the keep
//    threshold.  It cannot see global routing adjacencies -- that is
//    exactly what GLRFM adds.

#pragma once

#include "defects/defects.h"
#include "lift/fault.h"
#include "netlist/netlist.h"

namespace catlift::lift {

/// The complete schematic fault list (unweighted: every fault carries
/// probability 1 so the list is a pure enumeration).
FaultList all_schematic_faults(const netlist::Circuit& ckt);

struct L2rfmOptions {
    defects::DefectModel model = defects::DefectModel::date95();
    double p_min = 5e-9;
    /// Template geometry of a single-element layout (nm), used for the
    /// per-element critical-area estimates: gate length sets the
    /// drain-source spacing, `terminal_spacing` the gate-to-terminal metal
    /// spacing, `contact_size` the terminal contact.
    double gate_length_nm = 2000.0;
    double terminal_spacing_nm = 2000.0;
    double contact_size_nm = 2000.0;
    bool redundant_contacts = true;  ///< cells drawn with double contacts
};

/// Pre-layout realistic faults per element.
FaultList l2rfm_faults(const netlist::Circuit& ckt,
                       const L2rfmOptions& opt = {});

} // namespace catlift::lift
