// catlift/lift/fault.h
//
// Electrical fault descriptors: the interface between LIFT and AnaFAULT.
// "LIFT extracts faults from a given layout and generates a list of
// realistic and relevant faults.  This list represents the interface to
// AnaFAULT" (paper, ch. I).
//
// The supported classes mirror Fig. 2 plus the transistor stuck-open class
// of ch. VI:
//   * LocalShort / GlobalShort -- a bridge between two nets (global when it
//     crosses functional blocks or involves a supply);
//   * LineOpen   -- an open disconnecting exactly one device terminal;
//   * SplitNode  -- an open splitting a node of order n into k and n-k;
//   * StuckOpen  -- a contact/via cluster open killing one transistor
//     terminal (the "transistor stuck open" faults of ch. VI).

#pragma once

#include "geom/base.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace catlift::lift {

enum class FaultKind { LocalShort, GlobalShort, LineOpen, SplitNode,
                       StuckOpen };

const char* to_string(FaultKind k);
FaultKind fault_kind_from_string(const std::string& s);

/// Reference to one device terminal (netlist device name + terminal index
/// in SPICE order; MOS: 0=drain 1=gate 2=source, C/R: 0/1).
struct TerminalRef {
    std::string device;
    int terminal = 0;

    friend bool operator==(const TerminalRef&, const TerminalRef&) = default;
    friend auto operator<=>(const TerminalRef&, const TerminalRef&) = default;
};

/// One realistic fault, with its occurrence probability.
struct Fault {
    int id = 0;
    FaultKind kind = FaultKind::LocalShort;
    std::string mechanism;  ///< Tab. 1 mechanism ("metal1_short", ...)
    double probability = 0.0;

    // Shorts: the bridged nets.
    std::string net_a, net_b;

    // Opens/splits: the affected net and the terminals moved to the new
    // node (side B; side A keeps the original net and its ports/sources).
    std::string net;
    std::vector<TerminalRef> group_b;

    // StuckOpen: the affected device terminal.
    TerminalRef victim;

    /// Human-readable one-liner in the style of the paper's fault tags
    /// ("#6 BRI n_ds_short 5->6").
    std::string describe() const;
};

/// A ranked fault list.
struct FaultList {
    std::string circuit;
    std::vector<Fault> faults;

    std::size_t size() const { return faults.size(); }

    /// Sort by descending probability and re-number ids from 1.
    void rank();

    /// Sum of all fault probabilities (expected defects causing a fault).
    double total_probability() const;

    std::size_t count(FaultKind k) const;

    /// Count of all short-class faults (local + global).
    std::size_t shorts() const;
    /// Count of all open-class faults (line opens + splits + stuck-opens).
    std::size_t opens() const;
};

/// Canonical per-fault signature: kind + nets/terminals, ignoring id,
/// mechanism label and probability.  Two faults with equal signatures
/// inject the same circuit mutation from the same fault class, so their
/// simulation verdicts are interchangeable.  This is the key the
/// cross-revision diff and the incremental campaign engine agree on.
/// Deliberately *stricter* than batch::effect_signature (which folds a
/// stuck-open into its equivalent single-terminal line open and sorts
/// terminal groups): a fault the extractor reclassifies across revisions
/// is resimulated rather than carried -- conservative, never wrong.
std::string electrical_signature(const Fault& f);

/// Difference between two fault lists (keyed by electrical signature:
/// kind + nets/terminals, ignoring id and mechanism label).  Used to
/// compare fault-list generations (L2RFM vs GLRFM, threshold sweeps,
/// layout revisions).  When one list holds several faults with the same
/// signature, the last one wins the pairing (deterministic; extracted
/// lists are signature-unique by construction).
struct FaultListDiff {
    std::vector<Fault> only_a;
    std::vector<Fault> only_b;
    /// Faults present in both whose probability moved by more than
    /// `rel_tol` (pairs: a-version, b-version).
    std::vector<std::pair<Fault, Fault>> probability_changed;
    /// Faults present in both whose probability is unchanged within
    /// `rel_tol` (pairs: a-version, b-version) -- the ones whose baseline
    /// verdict an incremental campaign may carry over.
    std::vector<std::pair<Fault, Fault>> carried;
};

FaultListDiff diff_faultlists(const FaultList& a, const FaultList& b,
                              double rel_tol = 0.05);

/// Text interchange format (round-trips):
///
///   faultlist <circuit>
///   fault <id> <kind> <mechanism> <probability> short <netA> <netB>
///   fault <id> <kind> <mechanism> <probability> open <net> <dev:term>...
///   fault <id> <kind> <mechanism> <probability> stuck <dev:term>
///   end
void write_faultlist(std::ostream& os, const FaultList& fl);
std::string write_faultlist(const FaultList& fl);
FaultList read_faultlist(std::istream& is);
FaultList read_faultlist_text(const std::string& text);

} // namespace catlift::lift
