#include "lift/schematic_faults.h"

#include <algorithm>

namespace catlift::lift {

using netlist::Circuit;
using netlist::Device;
using netlist::DeviceKind;

namespace {

/// Terminal name per index for describe()-friendly mechanisms.
const char* mos_term_name(int t) {
    switch (t) {
        case 0: return "d";
        case 1: return "g";
        case 2: return "s";
    }
    return "?";
}

} // namespace

FaultList all_schematic_faults(const Circuit& ckt) {
    FaultList fl;
    fl.circuit = ckt.title;
    int id = 1;

    for (const Device& d : ckt.devices) {
        switch (d.kind) {
            case DeviceKind::Mosfet: {
                // Three single opens (one per terminal).
                for (int t : {0, 1, 2}) {
                    Fault f;
                    f.id = id++;
                    f.kind = FaultKind::LineOpen;
                    f.mechanism = std::string("schem_open_") +
                                  mos_term_name(t);
                    f.probability = 1.0;
                    f.net = d.nodes[static_cast<std::size_t>(t)];
                    f.group_b = {{d.name, t}};
                    fl.faults.push_back(std::move(f));
                }
                // Three terminal-pair shorts, skipping designed
                // connections (same net on both terminals).
                const std::pair<int, int> pairs[] = {{1, 0}, {1, 2}, {0, 2}};
                const char* names[] = {"schem_short_gd", "schem_short_gs",
                                       "schem_short_ds"};
                for (int p = 0; p < 3; ++p) {
                    const auto [t1, t2] = pairs[p];
                    const std::string& n1 =
                        d.nodes[static_cast<std::size_t>(t1)];
                    const std::string& n2 =
                        d.nodes[static_cast<std::size_t>(t2)];
                    if (n1 == n2) continue;  // designed short
                    Fault f;
                    f.id = id++;
                    f.kind = FaultKind::LocalShort;
                    f.mechanism = names[p];
                    f.probability = 1.0;
                    f.net_a = std::min(n1, n2);
                    f.net_b = std::max(n1, n2);
                    fl.faults.push_back(std::move(f));
                }
                break;
            }
            case DeviceKind::Capacitor:
            case DeviceKind::Resistor: {
                for (int t : {0, 1}) {
                    Fault f;
                    f.id = id++;
                    f.kind = FaultKind::LineOpen;
                    f.mechanism = "schem_open";
                    f.probability = 1.0;
                    f.net = d.nodes[static_cast<std::size_t>(t)];
                    f.group_b = {{d.name, t}};
                    fl.faults.push_back(std::move(f));
                    // One terminal open fully disconnects a two-terminal
                    // element; the second open is the same fault.
                    break;
                }
                if (d.nodes[0] != d.nodes[1]) {
                    Fault f;
                    f.id = id++;
                    f.kind = FaultKind::LocalShort;
                    f.mechanism = "schem_short";
                    f.probability = 1.0;
                    f.net_a = std::min(d.nodes[0], d.nodes[1]);
                    f.net_b = std::max(d.nodes[0], d.nodes[1]);
                    fl.faults.push_back(std::move(f));
                }
                break;
            }
            case DeviceKind::VSource:
            case DeviceKind::ISource:
                break;  // stimuli are not fault sites
        }
    }
    return fl;
}

FaultList l2rfm_faults(const Circuit& ckt, const L2rfmOptions& opt) {
    FaultList fl;
    fl.circuit = ckt.title;
    const defects::DefectModel& model = opt.model;
    const defects::DefectStatistics& stats = model.stats();

    const auto* m_diff_short =
        stats.find(layout::Layer::NDiff, defects::FailureMode::Short);
    const auto* m_poly_short =
        stats.find(layout::Layer::Poly, defects::FailureMode::Short);
    const auto* m_m1_open =
        stats.find(layout::Layer::Metal1, defects::FailureMode::Open);
    const auto* m_poly_open =
        stats.find(layout::Layer::Poly, defects::FailureMode::Open);
    const auto* m_cd_open = stats.find(layout::Layer::Contact,
                                       defects::FailureMode::Open,
                                       layout::Layer::NDiff);
    require(m_diff_short && m_poly_short && m_m1_open && m_poly_open &&
                m_cd_open,
            "l2rfm: defect statistics lack required mechanisms");

    auto push = [&](Fault f) {
        if (f.probability < opt.p_min) return;
        fl.faults.push_back(std::move(f));
    };

    for (const Device& d : ckt.devices) {
        if (d.kind != DeviceKind::Mosfet) {
            if (d.kind == DeviceKind::Capacitor ||
                d.kind == DeviceKind::Resistor) {
                // Element template: plate/body short across the dielectric
                // footprint; open at the contacted terminal.
                if (d.nodes[0] != d.nodes[1]) {
                    Fault s;
                    s.kind = FaultKind::LocalShort;
                    s.mechanism = "l2_plate_short";
                    s.net_a = std::min(d.nodes[0], d.nodes[1]);
                    s.net_b = std::max(d.nodes[0], d.nodes[1]);
                    // Plates face each other over the full perimeter; use a
                    // generous facing length (100 um template).
                    s.probability = model.bridge_probability(
                        *m_diff_short, 100000.0, opt.terminal_spacing_nm);
                    push(std::move(s));
                }
                Fault o;
                o.kind = FaultKind::LineOpen;
                o.mechanism = "l2_contact_open";
                o.net = d.nodes[0];
                o.group_b = {{d.name, 0}};
                o.probability = model.cut_probability(
                    *m_cd_open, opt.contact_size_nm, opt.contact_size_nm);
                push(std::move(o));
            }
            continue;
        }

        const double w_nm = d.w * 1e9;
        // Drain-source bridge across the gate: facing length = W,
        // spacing = L (diffusion mechanism).
        if (d.drain() != d.source_node()) {
            Fault f;
            f.kind = FaultKind::LocalShort;
            f.mechanism = "l2_ds_short";
            f.net_a = std::min(d.drain(), d.source_node());
            f.net_b = std::max(d.drain(), d.source_node());
            f.probability =
                model.bridge_probability(*m_diff_short, w_nm,
                                         opt.gate_length_nm);
            push(std::move(f));
        }
        // Gate to drain / source bridges: poly flank faces the terminal
        // metal over the channel width.
        for (int t : {0, 2}) {
            const std::string& n = d.nodes[static_cast<std::size_t>(t)];
            if (n == d.gate()) continue;  // designed gate-drain short
            Fault f;
            f.kind = FaultKind::LocalShort;
            f.mechanism = t == 0 ? "l2_gd_short" : "l2_gs_short";
            f.net_a = std::min(d.gate(), n);
            f.net_b = std::max(d.gate(), n);
            f.probability = model.bridge_probability(
                *m_poly_short, w_nm, opt.terminal_spacing_nm);
            push(std::move(f));
        }
        // Terminal opens: drain/source from contact clusters, gate from
        // the poly neck between pad and channel.
        for (int t : {0, 2}) {
            Fault f;
            f.kind = FaultKind::LineOpen;
            f.mechanism = "l2_contact_open";
            f.net = d.nodes[static_cast<std::size_t>(t)];
            f.group_b = {{d.name, t}};
            const double c = opt.contact_size_nm;
            f.probability =
                opt.redundant_contacts
                    ? model.cut_probability(*m_cd_open, c, 3 * c)
                    : model.cut_probability(*m_cd_open, c, c);
            push(std::move(f));
        }
        {
            Fault f;
            f.kind = FaultKind::LineOpen;
            f.mechanism = "l2_gate_open";
            f.net = d.gate();
            f.group_b = {{d.name, 1}};
            // Poly neck: ~4 um of minimum-width poly in the template.
            f.probability = model.open_probability(*m_poly_open, 4000.0,
                                                   opt.gate_length_nm);
            push(std::move(f));
        }
    }
    fl.rank();
    return fl;
}

} // namespace catlift::lift
