// anafaultc -- the AnaFAULT tool as a command-line program.
//
// Reads a SPICE deck (with its .tran card) and a LIFT fault list, runs the
// automatic fault simulation cycle for every fault, and reports coverage.
//
//   anafaultc <deck.sp> <faults.flt> [options]
//     --observe <node>   monitored node (repeatable; default: .save nodes)
//     --supply <vsrc>    also monitor the branch current of this source
//     --model <m>        hard fault model: resistor (default) | source
//     --v-tol <V>        amplitude tolerance (default 2.0)
//     --t-tol <s>        time tolerance (default 0.2e-6)
//     --threads <n>      parallel workers (default 1)
//     --store <file>     append-only result store (crash-resumable log)
//     --resume           reuse finished faults from --store
//     --workers <n>      multi-process fabric: shard the fault list by id
//                        range across n supervised worker processes (each
//                        a self-exec of this binary with --worker), merge
//                        the shards into --store and report as usual.
//                        Workers that crash or hang are respawned with
//                        backoff; a fault that kills its worker twice in
//                        a row is retired `quarantined` (requires --store)
//     --worker-timeout <s>  SIGKILL a worker silent for s seconds
//                        (default 30)
//     --worker-failpoints <slot[.spawn]>=<spec>  arm <spec> in one worker
//                        slot (every spawn, or only spawn index <spawn>);
//                        repeatable -- how the kill-worker CI smoke aims
//                        torn_crash / poison at specific workers
//     --worker           (internal) run as a fabric worker process
//     --fault-range <lo:hi>  (internal) fault-id range of this worker
//     --heartbeat-fd <fd>    (internal) supervision pipe fd
//     --merge-shards <base>  fold every <base>.shard-* into the canonical
//                        store at <base> for the campaign of the given
//                        deck + fault list, report, and exit
//     --baseline-store <file>   result store of a previous layout revision
//     --baseline-faults <file>  fault list that baseline store was run for;
//                               with --baseline-store, the campaign runs
//                               incrementally: signature-identical faults
//                               carry their baseline verdicts, only the
//                               added/changed remainder is simulated, and
//                               --store receives the merged (full) log
//     --diff-tol <frac>  probability tolerance of the revision diff (0.05)
//     --no-early-abort   integrate every faulty run to tstop
//     --no-collapse      skip the fault-collapsing pre-pass
//     --no-adaptive      fixed-grid integration (no LTE stride control)
//     --lte-tol <tol>    adaptive LTE acceptance tolerance (default 5e-3)
//     --no-sparse        force the dense kernel at every size
//     --sparse           force the sparse kernel at every size
//     --no-bypass        disable the modified-Newton Jacobian bypass
//     --bypass-tol <tol> bypass movement tolerance (default 1e-7)
//     --device-bypass-tol <tol>  per-device stamp-reuse tolerance
//                        (campaign default 0: replay only bitwise-unchanged
//                        devices -- margin-safe; raise to skip settled
//                        devices' model evaluations)
//     --ordering <o>     sparse first-factorization: amd (default) |
//                        markowitz
//     --no-share-symbolic  every faulty kernel runs its own ordering
//                        instead of adopting the nominal one
//     --wall-budget <s>  per-fault wall-clock deadline (0 = unlimited)
//     --nr-budget <n>    per-fault total-NR-iteration budget (0 = unlimited)
//     --step-budget <n>  per-fault transient-step budget (0 = unlimited)
//     --max-retries <n>  degraded re-attempts before quarantine (default 4;
//                        0 = first failure retires the fault as failed)
//     --store-durability <d>  flush (default: survives process death) |
//                        fsync (survives power loss; one fsync per append)
//     --repair-store <file>  offline store repair: trim the file to its
//                        last intact record, report records kept / bytes
//                        dropped, and exit (no deck/fault list needed);
//                        every <file>.shard-* gets the same treatment,
//                        reported as a per-shard records/bytes-kept table
//     --failpoints <spec>  arm deterministic failpoints, e.g.
//                        "store.append=torn@3;kernel.factor=singular"
//                        (also read from env CATLIFT_FAILPOINTS;
//                        see docs/robustness.md for the site catalog)
//     --stats            batch/kernel counter block (scheduler, bypass,
//                        symbolic cache, ordering/numeric time split,
//                        per-phase latency percentiles)
//     --trace <file>     record per-fault spans and write a Chrome
//                        trace_event JSON (open in Perfetto)
//     --metrics-json <file>  write the metrics registry snapshot as JSON
//     --events <file>    stream campaign lifecycle events as JSONL
//     --progress         live [k/n] progress line on stderr
//     --table            per-fault result table
//     --plot             ASCII coverage plot
//     --csv <file>       coverage curve CSV

#include "anafault/campaign.h"
#include "anafault/incremental.h"
#include "anafault/report.h"
#include "anafault/worker.h"
#include "batch/fabric.h"
#include "batch/shard.h"
#include "lift/fault.h"
#include "netlist/parser.h"
#include "obs/obs.h"
#include "robust/failpoint.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace {

[[noreturn]] void usage() {
    std::fprintf(
        stderr,
        "usage: anafaultc <deck.sp> <faults.flt> [--observe node]... "
        "[--supply vsrc] [--model resistor|source] [--v-tol V] [--t-tol s] "
        "[--threads n] [--store file] [--resume] "
        "[--workers n] [--worker-timeout s] "
        "[--worker-failpoints slot[.spawn]=spec] [--merge-shards base] "
        "[--baseline-store file --baseline-faults file] [--diff-tol frac] "
        "[--no-early-abort] "
        "[--no-collapse] [--no-adaptive] [--lte-tol tol] [--no-sparse] "
        "[--sparse] [--no-bypass] [--bypass-tol tol] "
        "[--device-bypass-tol tol] [--ordering amd|markowitz] "
        "[--no-share-symbolic] [--wall-budget s] [--nr-budget n] "
        "[--step-budget n] [--max-retries n] "
        "[--store-durability flush|fsync] [--repair-store file] "
        "[--failpoints spec] [--stats] [--trace file] "
        "[--metrics-json file] [--events file] [--progress] [--table] "
        "[--plot] [--csv file]\n");
    std::exit(2);
}

catlift::lift::FaultList read_faults_file(const std::string& path) {
    std::ifstream f(path);
    if (!f.good()) throw catlift::Error("cannot open fault list " + path);
    return catlift::lift::read_faultlist(f);
}

/// Path of this very binary, for the fabric's worker self-exec.
std::string self_exe(const char* argv0) {
#if defined(__linux__)
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
#endif
    return argv0;
}

/// One --worker-failpoints directive: arm `spec` in worker `slot`, on
/// every spawn (spawn < 0) or only on spawn index `spawn`.
struct WorkerFailpoint {
    std::size_t slot = 0;
    int spawn = -1;
    std::string spec;
};

WorkerFailpoint parse_worker_failpoint(const std::string& s) {
    const auto eq = s.find('=');
    if (eq == std::string::npos || eq == 0) usage();
    const std::string key = s.substr(0, eq);
    WorkerFailpoint wf;
    wf.spec = s.substr(eq + 1);
    try {
        const auto dot = key.find('.');
        wf.slot = std::stoull(key.substr(0, dot));
        if (dot != std::string::npos)
            wf.spawn = std::stoi(key.substr(dot + 1));
    } catch (const std::exception&) {
        usage();
    }
    if (wf.spec.empty()) usage();
    return wf;
}

/// Flags forwarded verbatim from the fabric parent to every worker:
/// everything that shapes the campaign (manifest or execution), nothing
/// that is per-process plumbing (store paths, reporting, failpoints).
const std::set<std::string>& forwarded_flags() {
    static const std::set<std::string> kForward = {
        "--observe", "--supply", "--model", "--v-tol", "--t-tol",
        "--threads", "--no-early-abort", "--no-collapse", "--no-adaptive",
        "--lte-tol", "--no-sparse", "--sparse", "--no-bypass",
        "--bypass-tol", "--device-bypass-tol", "--ordering",
        "--no-share-symbolic", "--wall-budget", "--nr-budget",
        "--step-budget", "--max-retries", "--store-durability"};
    return kForward;
}

} // namespace

int main(int argc, char** argv) {
    using namespace catlift;
    // Env-armed failpoints first, so an explicit --failpoints wins when
    // both name the same site.
    try {
        robust::arm_from_env();
    } catch (const Error& e) {
        std::fprintf(stderr, "anafaultc: CATLIFT_FAILPOINTS: %s\n", e.what());
        return 2;
    }
    std::string deck_path, flt_path, csv_path;
    std::string baseline_store, baseline_flt_path;
    std::string trace_path, metrics_path, events_path;
    std::string repair_path, merge_base, fault_range;
    unsigned fabric_workers = 0;
    double worker_timeout = 30.0;
    bool worker_mode = false;
    int heartbeat_fd = -1;
    std::vector<WorkerFailpoint> worker_failpoints;
    std::vector<std::string> forward_args;  ///< parent argv slices workers get
    double diff_tol = 0.05;
    anafault::CampaignOptions opt;
    opt.detection.observed.clear();
    bool table = false, plot = false, stats = false, progress = false;

    for (int i = 1; i < argc; ++i) {
        const int arg_start = i;
        const std::string a = argv[i];
        auto next = [&]() -> const char* {
            if (++i >= argc) usage();
            return argv[i];
        };
        if (a == "--observe") opt.detection.observed.push_back(next());
        else if (a == "--supply")
            opt.detection.observed_supplies.push_back(next());
        else if (a == "--model") {
            const std::string m = next();
            if (m == "resistor")
                opt.injection.model = anafault::HardFaultModel::Resistor;
            else if (m == "source")
                opt.injection.model = anafault::HardFaultModel::Source;
            else
                usage();
        } else if (a == "--v-tol") opt.detection.v_tol = std::atof(next());
        else if (a == "--t-tol") opt.detection.t_tol = std::atof(next());
        else if (a == "--threads")
            opt.threads = static_cast<unsigned>(std::atoi(next()));
        else if (a == "--store") opt.result_store = next();
        else if (a == "--resume") opt.resume = true;
        else if (a == "--workers") {
            fabric_workers = static_cast<unsigned>(std::atoi(next()));
            if (fabric_workers < 1) {
                std::fprintf(stderr,
                             "anafaultc: --workers needs a positive count\n");
                return 2;
            }
        }
        else if (a == "--worker-timeout") {
            worker_timeout = std::atof(next());
            if (!(worker_timeout > 0.0)) {
                std::fprintf(stderr,
                             "anafaultc: --worker-timeout needs a positive "
                             "number of seconds\n");
                return 2;
            }
        }
        else if (a == "--worker-failpoints")
            worker_failpoints.push_back(parse_worker_failpoint(next()));
        else if (a == "--worker") worker_mode = true;
        else if (a == "--fault-range") fault_range = next();
        else if (a == "--heartbeat-fd") heartbeat_fd = std::atoi(next());
        else if (a == "--merge-shards") merge_base = next();
        else if (a == "--baseline-store") baseline_store = next();
        else if (a == "--baseline-faults") baseline_flt_path = next();
        else if (a == "--diff-tol") {
            diff_tol = std::atof(next());
            if (!(diff_tol >= 0.0)) {
                std::fprintf(
                    stderr,
                    "anafaultc: --diff-tol needs a non-negative number\n");
                return 2;
            }
        }
        else if (a == "--no-early-abort") opt.early_abort = false;
        else if (a == "--no-collapse") opt.collapse = false;
        else if (a == "--no-adaptive") opt.sim.adaptive = false;
        else if (a == "--lte-tol") {
            opt.sim.lte_tol = std::atof(next());
            if (!(opt.sim.lte_tol > 0.0)) {
                std::fprintf(stderr,
                             "anafaultc: --lte-tol needs a positive number\n");
                return 2;
            }
        }
        else if (a == "--no-sparse")
            opt.sim.sparse_threshold = static_cast<std::size_t>(-1);
        else if (a == "--sparse") opt.sim.sparse_threshold = 0;
        else if (a == "--no-bypass") opt.sim.bypass = false;
        else if (a == "--bypass-tol") {
            opt.sim.bypass_tol = std::atof(next());
            if (!(opt.sim.bypass_tol > 0.0)) {
                std::fprintf(
                    stderr,
                    "anafaultc: --bypass-tol needs a positive number\n");
                return 2;
            }
        }
        else if (a == "--device-bypass-tol") {
            opt.sim.device_bypass_tol = std::atof(next());
            if (!(opt.sim.device_bypass_tol >= 0.0)) {
                std::fprintf(stderr,
                             "anafaultc: --device-bypass-tol needs a "
                             "non-negative number\n");
                return 2;
            }
        }
        else if (a == "--ordering") {
            const std::string o = next();
            if (o == "amd")
                opt.sim.ordering = spice::SparseOrdering::Amd;
            else if (o == "markowitz")
                opt.sim.ordering = spice::SparseOrdering::Markowitz;
            else
                usage();
        }
        else if (a == "--no-share-symbolic") opt.share_symbolic = false;
        else if (a == "--wall-budget") {
            opt.sim.max_wall_seconds = std::atof(next());
            if (!(opt.sim.max_wall_seconds >= 0.0)) {
                std::fprintf(stderr,
                             "anafaultc: --wall-budget needs a non-negative "
                             "number of seconds\n");
                return 2;
            }
        }
        else if (a == "--nr-budget")
            opt.sim.max_nr_total =
                static_cast<std::size_t>(std::atoll(next()));
        else if (a == "--step-budget")
            opt.sim.max_tran_steps =
                static_cast<std::size_t>(std::atoll(next()));
        else if (a == "--max-retries") {
            opt.max_retries = std::atoi(next());
            if (opt.max_retries < 0) {
                std::fprintf(stderr,
                             "anafaultc: --max-retries needs a non-negative "
                             "count\n");
                return 2;
            }
        }
        else if (a == "--store-durability") {
            const std::string d = next();
            if (d == "flush") opt.store_durability = batch::Durability::Flush;
            else if (d == "fsync")
                opt.store_durability = batch::Durability::Fsync;
            else
                usage();
        }
        else if (a == "--repair-store") repair_path = next();
        else if (a == "--failpoints") {
            try {
                robust::arm(next());
            } catch (const Error& e) {
                std::fprintf(stderr, "anafaultc: %s\n", e.what());
                return 2;
            }
        }
        else if (a == "--stats") stats = true;
        else if (a == "--trace") trace_path = next();
        else if (a == "--metrics-json") metrics_path = next();
        else if (a == "--events") events_path = next();
        else if (a == "--progress") progress = true;
        else if (a == "--table") table = true;
        else if (a == "--plot") plot = true;
        else if (a == "--csv") csv_path = next();
        else if (!a.empty() && a[0] == '-') usage();
        else if (deck_path.empty()) deck_path = a;
        else if (flt_path.empty()) flt_path = a;
        else usage();
        if (forwarded_flags().count(a))
            for (int j = arg_start; j <= i; ++j)
                forward_args.emplace_back(argv[j]);
    }
    // --repair-store is a standalone command: repair, report, exit.  The
    // canonical file's shards (a fabric campaign that died before its
    // merge) get the same tail-trim, reported as a per-shard table.
    if (!repair_path.empty()) {
        try {
            const std::vector<std::string> shards =
                batch::list_shards(repair_path);
            const bool base_exists = std::filesystem::exists(repair_path);
            if (!base_exists && shards.empty())
                throw Error("repair-store: no such file: " + repair_path);
            int rc = 0;
            if (base_exists) {
                const batch::RepairReport rep =
                    batch::repair_store(repair_path);
                if (!rep.header_ok) {
                    std::printf("repair %s: no valid store header -- "
                                "nothing recoverable, file left untouched\n",
                                repair_path.c_str());
                    rc = 1;
                } else {
                    std::printf("repair %s: manifest %016llx, %zu records "
                                "kept, %zu of %zu bytes kept (%zu trimmed)\n",
                                repair_path.c_str(),
                                static_cast<unsigned long long>(rep.manifest),
                                rep.records_kept, rep.bytes_kept,
                                rep.bytes_total,
                                rep.bytes_total - rep.bytes_kept);
                }
            }
            if (!shards.empty()) {
                std::printf("%-40s %8s %12s %10s\n", "shard", "records",
                            "bytes kept", "trimmed");
                for (const std::string& shard : shards) {
                    const batch::RepairReport rep =
                        batch::repair_store(shard);
                    if (!rep.header_ok) {
                        std::printf("%-40s %8s %12s %10s\n", shard.c_str(),
                                    "-", "no header", "-");
                        rc = 1;
                        continue;
                    }
                    std::printf("%-40s %8zu %12zu %10zu\n", shard.c_str(),
                                rep.records_kept, rep.bytes_kept,
                                rep.bytes_total - rep.bytes_kept);
                }
            }
            return rc;
        } catch (const Error& e) {
            std::fprintf(stderr, "anafaultc: %s\n", e.what());
            return 1;
        }
    }
    if (deck_path.empty() || flt_path.empty()) usage();
    if (opt.resume && opt.result_store.empty()) {
        std::fprintf(stderr, "anafaultc: --resume needs --store <file>\n");
        return 2;
    }
    if (baseline_store.empty() != baseline_flt_path.empty()) {
        std::fprintf(stderr,
                     "anafaultc: --baseline-store and --baseline-faults "
                     "must be given together\n");
        return 2;
    }
    if (fabric_workers >= 1 && opt.result_store.empty()) {
        std::fprintf(stderr, "anafaultc: --workers needs --store <file>\n");
        return 2;
    }
    if (fabric_workers >= 1 && (!baseline_store.empty() || worker_mode)) {
        std::fprintf(stderr,
                     "anafaultc: --workers cannot be combined with --worker "
                     "or an incremental (--baseline-store) campaign\n");
        return 2;
    }
    if (worker_mode &&
        (opt.result_store.empty() || fault_range.find(':') ==
                                         std::string::npos)) {
        std::fprintf(stderr,
                     "anafaultc: --worker needs --store <shard> and "
                     "--fault-range lo:hi\n");
        return 2;
    }

    // Observation must be switched on before the campaign runs; --stats
    // needs the metrics bit too so the phase histograms fill in.
    if (stats || !metrics_path.empty()) obs::enable_metrics(true);
    if (!trace_path.empty()) obs::enable_tracing(true);
    if (!events_path.empty()) {
        auto sink = std::make_shared<obs::JsonlSink>(events_path);
        if (!sink->good()) {
            std::fprintf(stderr, "anafaultc: cannot write %s\n",
                         events_path.c_str());
            return 1;
        }
        obs::attach_event_sink(sink);
    }
    if (progress) obs::attach_event_sink(std::make_shared<obs::ProgressSink>());

    try {
        const netlist::Circuit ckt = netlist::parse_spice_file(deck_path);
        const lift::FaultList faults = read_faults_file(flt_path);

        if (opt.detection.observed.empty())
            opt.detection.observed = ckt.save_nodes;
        if (opt.detection.observed.empty())
            throw Error("no observed nodes: pass --observe or add .save to "
                        "the deck");

        // Internal fabric-worker mode: run the assigned id subrange into
        // the shard and exit quietly -- the supervisor owns all reporting.
        if (worker_mode) {
            anafault::WorkerOptions w;
            const auto colon = fault_range.find(':');
            w.id_lo = std::atoi(fault_range.substr(0, colon).c_str());
            w.id_hi = std::atoi(fault_range.substr(colon + 1).c_str());
            w.shard = opt.result_store;
            w.heartbeat_fd = heartbeat_fd;
            anafault::run_worker_campaign(ckt, faults, opt, w);
            obs::detach_event_sinks();
            return 0;
        }

        // --merge-shards is a standalone command: fold, report, exit.
        if (!merge_base.empty()) {
            const std::uint64_t manifest =
                anafault::campaign_manifest(ckt, faults, opt);
            const batch::ShardMergeReport m = batch::merge_shards(
                merge_base, manifest, batch::list_shards(merge_base),
                opt.store_durability);
            std::printf("merge %s: %zu shards, %zu records in, %zu kept, "
                        "%zu duplicates%s\n",
                        merge_base.c_str(), m.shards_merged, m.records_in,
                        m.records_kept, m.duplicates,
                        m.changed ? "" : " (store already canonical)");
            obs::detach_event_sinks();
            return 0;
        }

        anafault::CampaignResult res;
        if (fabric_workers >= 1) {
            const std::uint64_t manifest =
                anafault::campaign_manifest(ckt, faults, opt);
            std::vector<int> ids;
            ids.reserve(faults.faults.size());
            for (const lift::Fault& f : faults.faults) ids.push_back(f.id);

            batch::FabricOptions fo;
            fo.workers = fabric_workers;
            fo.worker_timeout_s = worker_timeout;
            fo.durability = opt.store_durability;
            const std::string exe = self_exe(argv[0]);
            batch::WorkerCommand cmd = [&](const batch::WorkerSlot& s) {
                std::vector<std::string> v = {
                    exe, deck_path, flt_path, "--worker", "--fault-range",
                    std::to_string(s.range.lo) + ":" +
                        std::to_string(s.range.hi),
                    "--store", s.shard, "--heartbeat-fd",
                    std::to_string(s.heartbeat_fd)};
                v.insert(v.end(), forward_args.begin(), forward_args.end());
                for (const WorkerFailpoint& wf : worker_failpoints)
                    if (wf.slot == s.slot &&
                        (wf.spawn < 0 || wf.spawn == s.spawn_index)) {
                        v.push_back("--failpoints");
                        v.push_back(wf.spec);
                    }
                return v;
            };
            batch::PoisonRecord poison = [&](int id, int deaths,
                                             const std::string& log) {
                return anafault::quarantine_record(faults, id, deaths, log);
            };
            const batch::FabricReport frep = batch::run_fabric(
                ids, manifest, opt.result_store, cmd, poison, fo);
            // Merge whatever the workers produced: even an abandoned
            // fabric leaves a maximal, resumable canonical store behind.
            batch::merge_shards(opt.result_store, manifest,
                                batch::list_shards(opt.result_store),
                                opt.store_durability);
            if (!frep.completed) {
                for (const batch::SlotReport& sr : frep.slots)
                    if (!sr.completed)
                        std::fprintf(stderr,
                                     "anafaultc: worker %zu (faults %d..%d) "
                                     "abandoned after %d deaths\n",
                                     sr.slot, sr.range.lo, sr.range.hi,
                                     sr.deaths);
                return 1;
            }
            res = anafault::load_campaign_result(ckt, faults, opt,
                                                 opt.result_store);
            res.batch.threads = opt.threads;
            res.batch.worker_processes = frep.slots.size();
            res.batch.worker_spawns = frep.spawns;
            res.batch.worker_deaths = frep.deaths;
            res.batch.worker_timeouts = frep.timeouts;
            res.batch.poisoned = frep.poisoned;
        } else if (!baseline_store.empty()) {
            anafault::IncrementalOptions iopt;
            iopt.campaign = opt;
            iopt.baseline_store = baseline_store;
            iopt.rel_tol = diff_tol;
            auto inc = anafault::run_incremental_campaign(
                ckt, read_faults_file(baseline_flt_path), faults, iopt);
            std::printf("%s", anafault::incremental_summary(inc).c_str());
            res = std::move(inc.campaign);
        } else {
            res = anafault::run_campaign(ckt, faults, opt);
        }
        std::printf("%s", anafault::campaign_summary(res).c_str());
        if (stats) {
            const batch::BatchStats& b = res.batch;
            std::printf("\nbatch/kernel counters (current process):\n");
            std::printf("  threads %u, classes %zu, collapsed %zu\n",
                        b.threads, b.classes, b.collapsed);
            std::printf("  scheduled %zu, resumed %zu, carried from store "
                        "%zu\n",
                        b.scheduled, b.resumed, b.carried_from_store);
            std::printf("  early aborts %zu (steps saved %zu)\n",
                        b.early_aborts, b.steps_saved);
            std::printf("  steps integrated %zu, interpolated %zu\n",
                        b.steps_integrated, b.steps_interpolated);
            std::printf("  bypass solves %zu, device stamp skips %zu, "
                        "sparse refactors %zu\n",
                        b.bypass_solves, b.device_stamp_skips,
                        b.sparse_refactors);
            const double hit_rate =
                b.scheduled > 0 ? 100.0 *
                                      static_cast<double>(
                                          b.symbolic_cache_hits) /
                                      static_cast<double>(b.scheduled)
                                : 0.0;
            std::printf("  symbolic cache hits %zu / %zu kernels (%.1f%%)\n",
                        b.symbolic_cache_hits, b.scheduled, hit_rate);
            std::printf("  containment: retries %zu, quarantined %zu, "
                        "job errors %zu, store errors %zu\n",
                        b.retries, b.quarantined, b.job_errors,
                        b.store_errors);
            if (b.worker_processes > 0)
                std::printf("  fabric: %zu workers, %zu spawns, %zu deaths "
                            "(%zu timeouts), %zu poisoned\n",
                            b.worker_processes, b.worker_spawns,
                            b.worker_deaths, b.worker_timeouts, b.poisoned);
            for (const robust::FailpointStatus& fs : robust::status())
                std::printf("  failpoint %-20s hits %llu fired %llu\n",
                            fs.name.c_str(),
                            static_cast<unsigned long long>(fs.hits),
                            static_cast<unsigned long long>(fs.fired));
            // The ordering/numeric split as shares of the total kernel
            // time this run spent solving (nominal + faulty).
            const double kernel_s = res.nominal_seconds + res.total_seconds;
            auto pct = [kernel_s](double s) {
                return kernel_s > 0.0 ? 100.0 * s / kernel_s : 0.0;
            };
            std::printf("  kernel time %.4f s (nominal %.4f + faulty "
                        "%.4f)\n",
                        kernel_s, res.nominal_seconds, res.total_seconds);
            std::printf("  ordering time %.4f s (%.1f%% of kernel), "
                        "numeric refactor time %.4f s (%.1f%%)\n",
                        b.ordering_seconds, pct(b.ordering_seconds),
                        b.numeric_seconds, pct(b.numeric_seconds));
            std::printf("  phase latencies (seconds, current process):\n");
            for (std::uint8_t p = 0;
                 p < static_cast<std::uint8_t>(obs::Phase::kCount); ++p) {
                const auto ph = static_cast<obs::Phase>(p);
                const obs::HistogramSnapshot h =
                    obs::phase_histogram(ph).snapshot();
                if (h.count == 0) continue;
                std::printf("    %-12s count %-7llu p50 %.3e  p95 %.3e  "
                            "max %.3e\n",
                            obs::phase_name(ph),
                            static_cast<unsigned long long>(h.count),
                            h.p50(), h.p95(), h.max);
            }
        }
        if (plot)
            std::printf("\n%s",
                        anafault::coverage_plot_ascii(res).c_str());
        if (table)
            std::printf("\n%s", anafault::campaign_table(res).c_str());
        if (!csv_path.empty()) {
            std::ofstream f(csv_path);
            if (!f.good()) throw Error("cannot write " + csv_path);
            f << anafault::coverage_csv(res);
        }
        if (!trace_path.empty() &&
            !obs::write_chrome_trace_file(trace_path))
            throw Error("cannot write " + trace_path);
        if (!metrics_path.empty()) {
            std::ofstream f(metrics_path);
            if (!f.good()) throw Error("cannot write " + metrics_path);
            f << obs::Registry::global().to_json() << "\n";
        }
        obs::detach_event_sinks();
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "anafaultc: %s\n", e.what());
        return 1;
    }
}
