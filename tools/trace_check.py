#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by the obs layer.

Checks (see docs/trace-schema.md for the pinned schema):
  * the file is well-formed trace_event JSON: a top-level object with a
    "traceEvents" array, every event carrying name/ph/pid/tid and, for
    "X" complete events, numeric ts + dur;
  * timestamps are monotonically non-decreasing per lane (tid) in file
    order -- the writer sorts by (tid, ts), so any inversion means a
    broken export;
  * any "B"/"E" duration events balance per lane;
  * every fault span is closed (an "X" event by construction) and
    carries the pinned args: fault_id, signature, verdict;
  * with --expect-fault-spans N, exactly N fault spans are present --
    one per campaign fault.

Exit status 0 when the trace passes, 1 with a diagnostic otherwise.

Usage: trace_check.py TRACE.json [--expect-fault-spans N]
"""

import argparse
import json
import sys

REQUIRED_KEYS = ("name", "ph", "pid", "tid")
FAULT_SPAN_ARGS = ("fault_id", "signature", "verdict")


def fail(msg):
    print(f"trace_check: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace_event JSON file")
    ap.add_argument("--expect-fault-spans", type=int, default=None,
                    help="require exactly N closed 'fault' spans")
    args = ap.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot load {args.trace}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a 'traceEvents' array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("'traceEvents' is not an array")

    last_ts = {}       # tid -> last seen ts
    open_stack = {}    # tid -> [names] for B/E balance
    fault_spans = []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        for k in REQUIRED_KEYS:
            if k not in ev:
                fail(f"event {i} ({ev.get('name', '?')}) missing '{k}'")
        ph = ev["ph"]
        tid = ev["tid"]
        if ph == "M":
            continue  # metadata events carry no timestamp contract
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            fail(f"event {i} ({ev['name']}) has no numeric 'ts'")
        if ts < last_ts.get(tid, float("-inf")):
            fail(f"event {i} ({ev['name']}): ts {ts} goes backwards on "
                 f"lane tid={tid} (previous {last_ts[tid]})")
        last_ts[tid] = ts
        if ph == "X":
            if not isinstance(ev.get("dur"), (int, float)):
                fail(f"event {i} ({ev['name']}): 'X' event without "
                     f"numeric 'dur'")
            if ev["name"] == "fault":
                fault_spans.append((i, ev))
        elif ph == "B":
            open_stack.setdefault(tid, []).append(ev["name"])
        elif ph == "E":
            stack = open_stack.get(tid, [])
            if not stack:
                fail(f"event {i} ({ev['name']}): 'E' without matching "
                     f"'B' on lane tid={tid}")
            stack.pop()

    for tid, stack in open_stack.items():
        if stack:
            fail(f"lane tid={tid} has unclosed 'B' spans: {stack}")

    for i, ev in fault_spans:
        span_args = ev.get("args", {})
        for k in FAULT_SPAN_ARGS:
            if k not in span_args:
                fail(f"fault span at event {i} missing arg '{k}'")

    if args.expect_fault_spans is not None:
        if len(fault_spans) != args.expect_fault_spans:
            fail(f"expected {args.expect_fault_spans} fault spans, "
                 f"found {len(fault_spans)}")

    lanes = len(last_ts)
    print(f"trace_check: OK: {len(events)} events, {lanes} lanes, "
          f"{len(fault_spans)} closed fault spans")
    return 0


if __name__ == "__main__":
    sys.exit(main())
