#!/usr/bin/env python3
"""Bench regression guard.

Compares freshly produced BENCH_*.json files against the baselines
committed at the repository root and fails (exit 1) on any regression
beyond a tolerance band.  Two kinds of checks with separate bands:

  * counters (step/iteration/abort/verdict counts) are deterministic for
    a given commit on a given libm: a drift beyond the counter band in
    EITHER direction means the engine's behaviour changed and the
    baseline was not re-recorded.  The band (default 25%) absorbs
    cross-toolchain rounding differences only.
  * wall-clock is machine-dependent, so absolute times are never
    compared; instead intra-run speedup RATIOS (batch vs seed-serial,
    sparse+bypass vs dense per ring size) are guarded against regression
    only -- getting faster passes.  The ratio band is wider (default
    40%) because even intra-run ratios shift with core count and cache
    size across runner hardware.

Usage: bench_guard.py <baseline_dir> <fresh_dir> [counter_tol] [ratio_tol]
"""

import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


FAILURES = []


def check_counter(name, base, fresh, tol):
    if base == fresh:
        return
    ref = max(abs(base), 1.0)
    drift = abs(fresh - base) / ref
    status = "FAIL" if drift > tol else "ok"
    print(f"  [{status}] {name}: baseline {base} fresh {fresh} "
          f"(drift {drift:.1%})")
    if drift > tol:
        FAILURES.append(name)


def check_ratio(name, base, fresh, tol):
    """Guard a speedup ratio against regression (smaller = worse)."""
    if fresh >= base * (1.0 - tol):
        print(f"  [ok] {name}: baseline {base:.2f}x fresh {fresh:.2f}x")
        return
    print(f"  [FAIL] {name}: baseline {base:.2f}x fresh {fresh:.2f}x "
          f"(regressed beyond {tol:.0%})")
    FAILURES.append(name)


def by_key(samples, *keys):
    return {tuple(s[k] for k in keys): s for s in samples}


def guard_parallel_speedup(base, fresh, ctol, rtol):
    check_counter("parallel_speedup.faults", base["faults"], fresh["faults"],
                  0.0)
    b = by_key(base["samples"], "label")
    f = by_key(fresh["samples"], "label")
    for key, bs in b.items():
        fs = f.get(key)
        if fs is None:
            print(f"  [FAIL] parallel_speedup sample {key} missing")
            FAILURES.append(f"missing:{key}")
            continue
        label = key[0]
        for c in ("early_aborts", "steps_saved", "collapsed"):
            check_counter(f"parallel_speedup.{label}.{c}", bs[c], fs[c], ctol)
        if label != "seed-serial":
            check_ratio(f"parallel_speedup.{label}.speedup_vs_seed",
                        bs["speedup_vs_seed"], fs["speedup_vs_seed"], rtol)
    # Multi-process fabric row: all absolute properties of the fresh run.
    # On a kill-free campaign the supervisor must stay invisible (< 5% of
    # the single-process wall), nothing may die, and the merged store's
    # verdicts must match the direct run exactly.
    fab = fresh.get("fabric")
    if fab is None:
        if "fabric" in base:
            print("  [FAIL] parallel_speedup.fabric section missing")
            FAILURES.append("parallel_speedup.fabric-missing")
    else:
        overhead = fab.get("supervision_overhead")
        if not isinstance(overhead, (int, float)) or overhead >= 0.05:
            print(f"  [FAIL] parallel_speedup.fabric.supervision_overhead "
                  f"{overhead} breaches the 5% pin")
            FAILURES.append("parallel_speedup.fabric.supervision_overhead")
        else:
            print(f"  [ok] parallel_speedup.fabric.supervision_overhead "
                  f"{overhead:.4%} (< 5%)")
        if fab.get("deaths", 1) != 0:
            print(f"  [FAIL] parallel_speedup.fabric.deaths "
                  f"{fab.get('deaths')} on a kill-free run")
            FAILURES.append("parallel_speedup.fabric.deaths")
        else:
            print("  [ok] parallel_speedup.fabric.deaths 0")
        if not fab.get("verdicts_identical_fabric", False):
            print("  [FAIL] parallel_speedup.fabric."
                  "verdicts_identical_fabric is false")
            FAILURES.append("parallel_speedup.fabric.verdicts_identical")
        else:
            print("  [ok] parallel_speedup.fabric.verdicts_identical_fabric")
    # Observability overhead row: the traced-OFF cost model must stay
    # under the 2% acceptance pin, and tracing must never change a
    # verdict.  Both are absolute properties of the fresh run, not
    # baseline-relative drift checks.
    obs = fresh.get("obs")
    if obs is None:
        if "obs" in base:
            print("  [FAIL] parallel_speedup.obs section missing")
            FAILURES.append("parallel_speedup.obs-missing")
        return
    est = obs.get("traced_off_overhead_est")
    if not isinstance(est, (int, float)) or est >= 0.02:
        print(f"  [FAIL] parallel_speedup.obs.traced_off_overhead_est "
              f"{est} breaches the 2% pin")
        FAILURES.append("parallel_speedup.obs.traced_off_overhead")
    else:
        print(f"  [ok] parallel_speedup.obs.traced_off_overhead_est "
              f"{est:.4%} (< 2%)")
    if not obs.get("verdicts_identical_traced", False):
        print("  [FAIL] parallel_speedup.obs.verdicts_identical_traced "
              "is false")
        FAILURES.append("parallel_speedup.obs.verdicts_identical_traced")
    else:
        print("  [ok] parallel_speedup.obs.verdicts_identical_traced")


def guard_adaptive_tran(base, fresh, ctol, rtol):
    del rtol  # no wall ratios in this file; counters only
    b = by_key(base["tran"], "label")
    f = by_key(fresh["tran"], "label")
    for key, bs in b.items():
        fs = f.get(key)
        if fs is None:
            print(f"  [FAIL] adaptive_tran sample {key} missing")
            FAILURES.append(f"missing:{key}")
            continue
        label = key[0]
        for c in ("steps_integrated", "steps_interpolated", "steps_saved",
                  "detected"):
            check_counter(f"adaptive_tran.{label}.{c}", bs[c], fs[c], ctol)
    for key, bs in by_key(base["ac"]["samples"], "label").items():
        fs = by_key(fresh["ac"]["samples"], "label").get(key)
        if fs is None:
            print(f"  [FAIL] adaptive_tran ac sample {key} missing")
            FAILURES.append(f"missing:{key}")
            continue
        for c in ("freq_points_saved", "early_aborts", "detected"):
            check_counter(f"adaptive_tran.{key[0]}.{c}", bs[c], fs[c], ctol)


def guard_kernel_scaling(base, fresh, ctol, rtol):
    # --quick smoke runs a subset of the committed full baseline's rows;
    # only the rows present in the fresh run are compared then.
    quick = fresh.get("mode") == "quick"
    b = by_key(base["samples"], "label", "config")
    f = by_key(fresh["samples"], "label", "config")
    for key, bs in b.items():
        fs = f.get(key)
        if fs is None:
            if quick:
                continue
            print(f"  [FAIL] kernel_scaling sample {key} missing")
            FAILURES.append(f"missing:{key}")
            continue
        label, config = key
        for c in ("unknowns", "nr_iterations", "lu_factorizations"):
            check_counter(f"kernel_scaling.{label}.{config}.{c}", bs[c],
                          fs[c], ctol)
    common = sorted({k[0] for k in b if k in f})
    # The dense/sparse asymptotic claim: amd+bypass vs dense per size.
    for label in common:
        try:
            br = b[(label, "dense")]["wall_s"] / \
                max(b[(label, "sparse-amd+bypass")]["wall_s"], 1e-9)
            fr = f[(label, "dense")]["wall_s"] / \
                max(f[(label, "sparse-amd+bypass")]["wall_s"], 1e-9)
        except KeyError:
            continue
        check_ratio(f"kernel_scaling.{label}.amd_bypass_vs_dense", br, fr,
                    rtol)
    # The ordering claim: AMD vs Markowitz at the largest common size --
    # guarded against the baseline, with a hard >= 2x floor once the size
    # reaches 2k unknowns (the scale-up acceptance bar).
    ordered = [label for label in common
               if (label, "sparse-mark") in f and (label, "sparse-amd") in f]
    if ordered:
        largest = max(ordered,
                      key=lambda lb: f[(lb, "sparse-amd")]["unknowns"])
        br = b[(largest, "sparse-mark")]["wall_s"] / \
            max(b[(largest, "sparse-amd")]["wall_s"], 1e-9)
        fr = f[(largest, "sparse-mark")]["wall_s"] / \
            max(f[(largest, "sparse-amd")]["wall_s"], 1e-9)
        check_ratio(f"kernel_scaling.{largest}.amd_vs_markowitz", br, fr,
                    rtol)
        if f[(largest, "sparse-amd")]["unknowns"] >= 2000 and fr < 2.0:
            print(f"  [FAIL] kernel_scaling.{largest}.amd_vs_markowitz "
                  f"{fr:.2f}x below the 2x scale-up floor")
            FAILURES.append(f"kernel_scaling.{largest}.amd_floor")
    # Campaign-shared symbolic kernel section.
    cb, cf = base.get("campaign"), fresh.get("campaign")
    if cb and not cf:
        print("  [FAIL] kernel_scaling.campaign section missing")
        FAILURES.append("kernel_scaling.campaign-missing")
    elif cb and cf:
        for c in ("vco_faults", "vco_scheduled", "vco_cache_hits",
                  "vco_detected_cache_on", "vco_detected_cache_off",
                  "ota_device_stamp_skips"):
            check_counter(f"kernel_scaling.campaign.{c}", cb[c], cf[c], ctol)
        if cf["vco_cache_hit_rate"] < 0.9:
            print(f"  [FAIL] kernel_scaling.campaign.vco_cache_hit_rate "
                  f"{cf['vco_cache_hit_rate']:.2f} below 0.9")
            FAILURES.append("kernel_scaling.campaign.hit_rate")
        for flag in ("vco_default_verdicts_identical",
                     "ota_cache_verdicts_identical",
                     "ota_device_bypass_verdicts_identical"):
            if not cf.get(flag, False):
                print(f"  [FAIL] kernel_scaling.campaign.{flag} is false")
                FAILURES.append(f"kernel_scaling.campaign.{flag}")


def guard_incremental_campaign(base, fresh, ctol, rtol):
    # Per-class provenance counters of the cross-revision engine: a drift
    # means the revision perturber, the extraction or the diff changed.
    for c in ("baseline_faults", "revision_faults", "carried", "resimulated",
              "added", "removed", "probability_changed", "detected"):
        check_counter(f"incremental_campaign.{c}", base[c], fresh[c], ctol)
    if not fresh.get("verdicts_identical", False):
        print("  [FAIL] incremental_campaign.verdicts_identical is false")
        FAILURES.append("incremental_campaign.verdicts_identical")
    # The headline claim: warm incremental run vs cold full re-run.
    check_ratio("incremental_campaign.speedup_vs_cold",
                base["speedup_vs_cold"], fresh["speedup_vs_cold"], rtol)


def main():
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    base_dir, fresh_dir = sys.argv[1], sys.argv[2]
    ctol = float(sys.argv[3]) if len(sys.argv) > 3 else 0.25
    rtol = float(sys.argv[4]) if len(sys.argv) > 4 else 0.40

    guards = {
        "BENCH_parallel_speedup.json": guard_parallel_speedup,
        "BENCH_adaptive_tran.json": guard_adaptive_tran,
        "BENCH_kernel_scaling.json": guard_kernel_scaling,
        "BENCH_incremental_campaign.json": guard_incremental_campaign,
    }
    for name, guard in guards.items():
        try:
            base = load(f"{base_dir}/{name}")
        except FileNotFoundError:
            print(f"[skip] no committed baseline for {name}")
            continue
        try:
            fresh = load(f"{fresh_dir}/{name}")
        except FileNotFoundError:
            print(f"[FAIL] fresh run missing {name}")
            FAILURES.append(f"missing-file:{name}")
            continue
        print(f"== {name} (counters {ctol:.0%}, ratios {rtol:.0%}) ==")
        guard(base, fresh, ctol, rtol)

    if FAILURES:
        print(f"\nbench guard: {len(FAILURES)} regression(s):")
        for f in FAILURES:
            print(f"  - {f}")
        return 1
    print("\nbench guard: all within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
