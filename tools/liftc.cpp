// liftc -- the LIFT tool as a command-line program.
//
// Reads a layout interchange file, performs the simultaneous circuit +
// fault extraction, and writes the ranked weighted fault list (the
// interface file AnaFAULT consumes).
//
//   liftc <layout.lay> [options]
//     -o <file>        fault list output (default: stdout)
//     --netlist <file> write the extracted SPICE netlist
//     --p-min <p>      keep threshold (default 1.2e-8)
//     --x0 <um>        defect size distribution peak (default 1.0)
//     --xmax <um>      maximum defect size (default 25.0)
//     --stats          print extraction statistics
//     --render         print an ASCII view of the layout

#include "layout/layout.h"
#include "layout/render.h"
#include "lift/extract_faults.h"
#include "netlist/writer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

namespace {

[[noreturn]] void usage() {
    std::fprintf(stderr,
                 "usage: liftc <layout.lay> [-o faults.flt] "
                 "[--netlist out.sp] [--p-min p] [--x0 um] [--xmax um] "
                 "[--stats] [--render]\n");
    std::exit(2);
}

} // namespace

int main(int argc, char** argv) {
    using namespace catlift;
    std::string in_path, out_path, netlist_path;
    double p_min = 1.2e-8, x0_um = 1.0, xmax_um = 25.0;
    bool stats = false, render = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char* {
            if (++i >= argc) usage();
            return argv[i];
        };
        if (a == "-o") out_path = next();
        else if (a == "--netlist") netlist_path = next();
        else if (a == "--p-min") p_min = std::atof(next());
        else if (a == "--x0") x0_um = std::atof(next());
        else if (a == "--xmax") xmax_um = std::atof(next());
        else if (a == "--stats") stats = true;
        else if (a == "--render") render = true;
        else if (!a.empty() && a[0] == '-') usage();
        else if (in_path.empty()) in_path = a;
        else usage();
    }
    if (in_path.empty()) usage();

    try {
        const layout::Layout lo = layout::read_layout_file(in_path);
        if (render) std::printf("%s\n", layout::ascii_render(lo).c_str());

        lift::LiftOptions opt;
        opt.p_min = p_min;
        opt.model = defects::DefectModel(
            defects::DefectStatistics::date95_table1(),
            defects::SizeDistribution(x0_um * 1000.0), xmax_um * 1000.0);
        const auto res = lift::extract_faults(
            lo, layout::Technology::single_poly_double_metal(), opt);

        if (stats) {
            std::fprintf(stderr,
                         "extracted %zu devices, %zu nets; %zu faults "
                         "(%zu bridges, %zu opens/splits, %zu stuck-open); "
                         "%zu sites dropped (%.3g p-mass)\n",
                         res.extraction.circuit.devices.size(),
                         res.extraction.net_names.size(), res.faults.size(),
                         res.faults.shorts(),
                         res.faults.count(lift::FaultKind::LineOpen) +
                             res.faults.count(lift::FaultKind::SplitNode),
                         res.faults.count(lift::FaultKind::StuckOpen),
                         res.stats.dropped,
                         res.stats.dropped_probability);
        }
        if (!netlist_path.empty())
            netlist::write_spice_file(netlist_path, res.extraction.circuit);

        if (out_path.empty()) {
            lift::write_faultlist(std::cout, res.faults);
        } else {
            std::ofstream f(out_path);
            if (!f.good()) throw Error("cannot write " + out_path);
            lift::write_faultlist(f, res.faults);
        }
        return 0;
    } catch (const Error& e) {
        std::fprintf(stderr, "liftc: %s\n", e.what());
        return 1;
    }
}
