#!/usr/bin/env python3
"""catlift_lint: project-specific invariant linter for the catlift repo.

Generic static analysis cannot know this repo's contracts; this linter
parses the sources and enforces the ones a silent violation would poison
campaigns with:

  CL001 manifest-coverage
      Every field of SimOptions / CampaignOptions / AcCampaignOptions /
      DcScreenOptions is either referenced inside its campaign-manifest
      hash region or carries a `manifest-exempt: <reason>` marker in the
      doc comment above it.  A new verdict-affecting knob that skips the
      manifest would let a foreign result store be resumed as if it were
      the same campaign.

  CL002 store-format-version
      The serialized record surface (FaultSimResult fields plus the
      encode()/decode() bodies in result_store.cpp) is fingerprinted into
      tools/store_format.lock together with the declared kVersion.  Any
      change to the serialization without a version bump -- which would
      make old stores decode into garbage instead of being rejected as
      foreign -- fails; a version bump requires regenerating the lock
      (`--update-store-lock`), making the bump reviewable.

  CL003 determinism
      No rand()/time()/locale-dependent calls in the src/spice and
      src/anafault verdict paths.  Verdicts must be bit-reproducible
      across runs, machines and locales; wall-clock reads are confined
      to std::chrono, randomness to src/defects' seeded generators.
      Suppress a deliberate use with `// lint-allow(CL003): <reason>`.

  CL004 fault-containment
      The per-fault body (the run_class lambda) of each campaign runner
      catches std::exception: one pathological fault must retire
      `failed`, never take down the other faults' verdicts with it.

  CL005 site-docs
      Every failpoint site name (robust::hit("...")), span phase name
      and event name used in the sources appears in the docs catalogs
      (docs/robustness.md / docs/trace-schema.md), so the operational
      surface never drifts ahead of its documentation.

Usage:
  catlift_lint.py [--root DIR]      lint the repo (default: script's repo)
  catlift_lint.py --self-test       prove every rule fires on a seeded
                                    violation (run in CI after the lint)
  catlift_lint.py --update-store-lock   rewrite tools/store_format.lock
"""

import argparse
import hashlib
import json
import re
import shutil
import sys
import tempfile
from pathlib import Path

# ---------------------------------------------------------------------------
# Repo map: where the contracts live.

OPTION_STRUCTS = {
    # struct -> (header, [files containing its manifest region],
    #            [functions forming the region])
    "SimOptions": (
        "src/spice/engine.h",
        ["src/anafault/campaign.cpp"],
        ["sim_knob_signature"],
    ),
    "CampaignOptions": (
        "src/anafault/campaign.h",
        ["src/anafault/campaign.cpp"],
        ["manifest_hash", "campaign_manifest", "resolve_tran"],
    ),
    "AcCampaignOptions": (
        "src/anafault/ac_campaign.h",
        ["src/anafault/ac_campaign.cpp"],
        ["ac_campaign_manifest"],
    ),
    "DcScreenOptions": (
        "src/anafault/dc_campaign.h",
        ["src/anafault/dc_campaign.cpp"],
        ["dc_screen_manifest"],
    ),
}

STORE_HEADER = "src/batch/result_store.h"
STORE_IMPL = "src/batch/result_store.cpp"
STORE_LOCK = "tools/store_format.lock"

DETERMINISM_DIRS = ["src/spice", "src/anafault"]

RUNNER_FILES = [
    "src/anafault/campaign.cpp",
    "src/anafault/ac_campaign.cpp",
    "src/anafault/dc_campaign.cpp",
]

TRACE_IMPL = "src/obs/trace.cpp"
ROBUSTNESS_DOC = "docs/robustness.md"
TRACE_SCHEMA_DOC = "docs/trace-schema.md"

EXEMPT_MARKER = "manifest-exempt:"
ALLOW_MARKER = re.compile(r"//\s*lint-allow\(([A-Z0-9]+)\)\s*:")

BANNED_CALLS = [
    # (rule label, compiled regex).  The lookbehind excludes member
    # accesses (.time(), ->rand()) and identifier tails (detect_time().
    ("rand()", re.compile(r"(?<![\w.>])(?:rand|srand|rand_r|drand48|"
                          r"lrand48|mrand48|random)\s*\(")),
    # Every libc time-family function takes an argument, so empty parens
    # (a member declaration like `double time() const`) are not a call.
    ("time()", re.compile(r"(?<![\w.>])(?:time|gettimeofday|localtime|"
                          r"gmtime|ctime)\s*\(\s*[^)\s]")),
    ("locale", re.compile(r"(?<![\w.>])(?:setlocale|atof|"
                          r"strto(?:d|f|ld))\s*\(|std::locale")),
]


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.rule} {self.path}:{self.line}: {self.message}"


# ---------------------------------------------------------------------------
# C++-shaped text helpers (regex-grade, not a parser -- enough for this
# repo's house style, and the self-tests pin that it stays enough).


def strip_comments(text):
    """Remove // and /* */ comments (string literals are left alone --
    good enough for fingerprinting and region matching)."""
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.S)
    return re.sub(r"//[^\n]*", "", text)


def extract_braced(text, open_pos):
    """Return (body, end_index) of the brace block opening at or after
    open_pos, or (None, -1)."""
    start = text.find("{", open_pos)
    if start < 0:
        return None, -1
    depth = 0
    for i in range(start, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return text[start + 1:i], i
    return None, -1


def find_struct_body(text, name):
    m = re.search(r"\bstruct\s+" + re.escape(name) + r"\b[^;{]*\{", text)
    if not m:
        return None, 0
    body, _ = extract_braced(text, m.start())
    line = text[:m.start()].count("\n") + 1
    return body, line


def find_function_body(text, name):
    """Body of the first function definition called `name` (skips mere
    calls/declarations by requiring a { before the next ;)."""
    for m in re.finditer(r"\b" + re.escape(name) + r"\s*\(", text):
        close = matching_paren(text, m.end() - 1)
        if close < 0:
            continue
        tail = text[close + 1:close + 200]
        brace = tail.find("{")
        semi = tail.find(";")
        if brace >= 0 and (semi < 0 or brace < semi):
            body, _ = extract_braced(text, close)
            return body
    return None


def matching_paren(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def struct_fields(body):
    """Yield (field_name, chunk_text) for every data member declared at
    the struct's top level.  Nested {...} regions (constructor bodies,
    inline methods) are elided first; statements containing a '(' other
    than an initializer call are treated as functions and skipped."""
    # A ';' inside a // comment must not split the statement it documents.
    lines = []
    for line in body.splitlines():
        i = line.find("//")
        if i >= 0:
            line = line[:i] + line[i:].replace(";", ",")
        lines.append(line)
    body = "\n".join(lines)
    flat = []
    depth = 0
    for c in body:
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            continue
        if depth == 0:
            flat.append(c)
    for chunk in "".join(flat).split(";"):
        code = strip_comments(chunk)
        code = re.sub(r"=.*", "", code, flags=re.S).strip()
        if not code or "(" in code or ")" in code:
            continue  # ctor/method signature remnants, not a field
        if re.match(r"^(?:using|typedef|friend|static\s+constexpr)\b", code):
            continue
        words = re.findall(r"[A-Za-z_]\w*", code)
        if len(words) < 2:
            continue  # a lone type name is not a declaration
        yield words[-1], chunk


# ---------------------------------------------------------------------------
# Rules


def rule_manifest_coverage(root):
    findings = []
    for struct, (header, region_files, region_fns) in OPTION_STRUCTS.items():
        htext = (root / header).read_text()
        body, line0 = find_struct_body(htext, struct)
        if body is None:
            findings.append(Finding("CL001", header, 1,
                                    f"struct {struct} not found"))
            continue
        region = ""
        for rf in region_files:
            rtext = (root / rf).read_text()
            for fn in region_fns:
                fn_body = find_function_body(rtext, fn)
                if fn_body:
                    region += strip_comments(fn_body)
        if not region:
            findings.append(Finding(
                "CL001", region_files[0], 1,
                f"manifest region {region_fns} for {struct} not found"))
            continue
        for field, chunk in struct_fields(body):
            if EXEMPT_MARKER in chunk:
                # The reason must sit on the marker's own line.
                if not re.search(re.escape(EXEMPT_MARKER) + r"[^\S\n]*\S",
                                 chunk):
                    findings.append(Finding(
                        "CL001", header, field_line(htext, line0, chunk),
                        f"{struct}::{field}: manifest-exempt marker "
                        "needs a reason"))
                continue
            if not re.search(r"[.>]\s*" + re.escape(field) + r"\b", region):
                findings.append(Finding(
                    "CL001", header, field_line(htext, line0, chunk),
                    f"{struct}::{field} is neither hashed in "
                    f"{'/'.join(region_fns)} nor marked "
                    f"'// {EXEMPT_MARKER} <reason>'"))
    return findings


def field_line(htext, struct_line, chunk):
    tail = chunk.strip().splitlines()[-1] if chunk.strip() else ""
    pos = htext.find(tail) if tail else -1
    return htext[:pos].count("\n") + 1 if pos >= 0 else struct_line


def store_fingerprint(root):
    """(declared version, fingerprint) of the record serialization
    surface: FaultSimResult's fields + encode()/decode() bodies,
    comment-stripped and whitespace-normalized so reformatting and
    comment edits never trigger CL002."""
    htext = (root / STORE_HEADER).read_text()
    itext = (root / STORE_IMPL).read_text()
    struct, _ = find_struct_body(htext, "FaultSimResult")
    enc = find_function_body(itext, "encode")
    dec = find_function_body(itext, "decode")
    m = re.search(r"kVersion\s*=\s*(\d+)", itext)
    version = int(m.group(1)) if m else -1
    surface = ""
    for part in (struct, enc, dec):
        if part is None:
            continue
        surface += re.sub(r"\s+", " ", strip_comments(part)) + "\n"
    return version, hashlib.sha256(surface.encode()).hexdigest()


def rule_store_format(root):
    version, digest = store_fingerprint(root)
    lock_path = root / STORE_LOCK
    if version < 0:
        return [Finding("CL002", STORE_IMPL, 1,
                        "kVersion constant not found")]
    if not lock_path.exists():
        return [Finding("CL002", STORE_LOCK, 1,
                        "missing store-format lock; run "
                        "catlift_lint.py --update-store-lock")]
    lock = json.loads(lock_path.read_text())
    if lock.get("version") != version:
        return [Finding(
            "CL002", STORE_IMPL, 1,
            f"STORE_FORMAT_VERSION is {version} but {STORE_LOCK} records "
            f"{lock.get('version')}; if the bump is intended, run "
            "catlift_lint.py --update-store-lock and commit the lock")]
    if lock.get("fingerprint") != digest:
        return [Finding(
            "CL002", STORE_IMPL, 1,
            "record serialization changed without a kVersion bump "
            "(FaultSimResult / encode / decode differ from the locked "
            f"fingerprint for v{version}); bump kVersion and run "
            "catlift_lint.py --update-store-lock")]
    return []


def update_store_lock(root):
    version, digest = store_fingerprint(root)
    (root / STORE_LOCK).write_text(json.dumps(
        {"version": version, "fingerprint": digest}, indent=2) + "\n")
    print(f"{STORE_LOCK}: locked store format v{version} ({digest[:12]}...)")


def rule_determinism(root):
    findings = []
    for d in DETERMINISM_DIRS:
        for path in sorted((root / d).rglob("*")):
            if path.suffix not in (".h", ".cpp", ".hpp", ".cc"):
                continue
            rel = path.relative_to(root).as_posix()
            for ln, line in enumerate(path.read_text().splitlines(), 1):
                allow = ALLOW_MARKER.search(line)
                if allow and allow.group(1) == "CL003":
                    continue
                code = re.sub(r"//.*", "", line)
                code = re.sub(r'"(?:\\.|[^"\\])*"', '""', code)
                for label, rx in BANNED_CALLS:
                    if rx.search(code):
                        findings.append(Finding(
                            "CL003", rel, ln,
                            f"{label}-family call in a verdict path "
                            "(use std::chrono / seeded generators, or "
                            "suppress with // lint-allow(CL003): reason)"))
    return findings


def rule_fault_containment(root):
    findings = []
    for rel in RUNNER_FILES:
        text = (root / rel).read_text()
        m = re.search(r"run_class\s*=\s*\[", text)
        if not m:
            findings.append(Finding(
                "CL004", rel, 1,
                "per-fault lambda `run_class` not found"))
            continue
        body, _ = extract_braced(text, m.end())
        line = text[:m.start()].count("\n") + 1
        if body is None or not re.search(
                r"catch\s*\(\s*(?:const\s+)?std::exception\b|catch\s*"
                r"\(\s*\.\.\.\s*\)", body):
            findings.append(Finding(
                "CL004", rel, line,
                "per-fault body does not catch std::exception -- one "
                "throwing fault would escape to the scheduler instead "
                "of retiring `failed`"))
    return findings


def rule_site_docs(root):
    findings = []
    robustness = (root / ROBUSTNESS_DOC).read_text()
    schema = (root / TRACE_SCHEMA_DOC).read_text()

    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".h", ".cpp", ".hpp", ".cc"):
            continue
        rel = path.relative_to(root).as_posix()
        text = path.read_text()
        for m in re.finditer(r'robust::hit\(\s*"([^"]+)"', text):
            if f"`{m.group(1)}`" not in robustness:
                findings.append(Finding(
                    "CL005", rel, text[:m.start()].count("\n") + 1,
                    f"failpoint site '{m.group(1)}' is not in the "
                    f"{ROBUSTNESS_DOC} catalog"))
        for m in re.finditer(r'emit_event\(\s*"([^"]+)"', text):
            if f"`{m.group(1)}`" not in schema:
                findings.append(Finding(
                    "CL005", rel, text[:m.start()].count("\n") + 1,
                    f"event '{m.group(1)}' is not in the "
                    f"{TRACE_SCHEMA_DOC} event table"))

    trace = (root / TRACE_IMPL).read_text()
    fn = find_function_body(trace, "phase_name")
    for m in re.finditer(r'return\s+"([^"]+)"', fn or ""):
        name = m.group(1)
        if name == "unknown":
            continue
        if f"`{name}`" not in schema:
            findings.append(Finding(
                "CL005", TRACE_IMPL, 1,
                f"span phase '{name}' is not in the "
                f"{TRACE_SCHEMA_DOC} span table"))
    return findings


RULES = [
    rule_manifest_coverage,
    rule_store_format,
    rule_determinism,
    rule_fault_containment,
    rule_site_docs,
]


def run_lint(root):
    findings = []
    for rule in RULES:
        findings.extend(rule(root))
    return findings


# ---------------------------------------------------------------------------
# Seeded-violation self-test: every rule must fire on a fixture tree a
# violation was injected into, and the pristine tree must be clean.
# tests/lint_test.py drives the same scenarios through unittest.


def make_fixture(root, dst):
    """Copy the lint-relevant slice of the repo into dst."""
    for sub in ("src", "docs"):
        shutil.copytree(root / sub, dst / sub)
    (dst / "tools").mkdir()
    shutil.copy(root / STORE_LOCK, dst / STORE_LOCK)
    return dst


def mutate(path, old, new, count=1):
    text = path.read_text()
    assert old in text, f"fixture drift: {old!r} not found in {path}"
    path.write_text(text.replace(old, new, count))


# Each scenario: (expected rule id, short name, mutator(fixture_root)).
def _seed_unhashed_sim_field(fx):
    mutate(fx / "src/spice/engine.h",
           "struct SimOptions {",
           "struct SimOptions {\n    double sneaky_new_tol = 1e-6;\n")


def _seed_unhashed_campaign_field(fx):
    mutate(fx / "src/anafault/campaign.h",
           "struct CampaignOptions {",
           "struct CampaignOptions {\n    bool sneaky_switch = false;\n")


def _seed_exempt_without_reason(fx):
    mutate(fx / "src/spice/engine.h",
           "struct SimOptions {",
           "struct SimOptions {\n    // manifest-exempt:\n"
           "    int undocumented = 0;\n")


def _seed_unbumped_store_change(fx):
    mutate(fx / "src/batch/result_store.cpp",
           "put(p, r.probability);",
           "put(p, r.probability);\n    put(p, r.sim_seconds);")


def _seed_version_bump_without_lock(fx):
    text = (fx / "src/batch/result_store.cpp").read_text()
    m = re.search(r"kVersion = (\d+)", text)
    mutate(fx / "src/batch/result_store.cpp",
           f"kVersion = {m.group(1)}",
           f"kVersion = {int(m.group(1)) + 1}")


def _seed_rand_in_kernel(fx):
    mutate(fx / "src/spice/engine.cpp",
           "namespace catlift::spice {",
           "namespace catlift::spice {\n"
           "static int jitter() { return rand() % 3; }\n")


def _seed_time_in_runner(fx):
    mutate(fx / "src/anafault/campaign.cpp",
           "namespace catlift::anafault {",
           "namespace catlift::anafault {\n"
           "static long stamp() { return time(nullptr); }\n")


def _seed_missing_catch(fx):
    mutate(fx / "src/anafault/dc_campaign.cpp",
           "catch (const std::exception", "catch (const catlift::Error",
           count=10)


def _seed_undocumented_failpoint(fx):
    mutate(fx / "src/batch/result_store.cpp",
           'robust::hit("store.append")',
           'robust::hit("store.append_v2")')


def _seed_undocumented_event(fx):
    mutate(fx / "src/batch/scheduler.cpp",
           'obs::emit_event("job_error"',
           'obs::emit_event("job_exploded"')


SCENARIOS = [
    ("CL001", "unhashed SimOptions field", _seed_unhashed_sim_field),
    ("CL001", "unhashed CampaignOptions field",
     _seed_unhashed_campaign_field),
    ("CL001", "manifest-exempt without reason", _seed_exempt_without_reason),
    ("CL002", "store record change without version bump",
     _seed_unbumped_store_change),
    ("CL002", "version bump without lock regen",
     _seed_version_bump_without_lock),
    ("CL003", "rand() in spice kernel", _seed_rand_in_kernel),
    ("CL003", "time() in campaign runner", _seed_time_in_runner),
    ("CL004", "per-fault catch narrowed", _seed_missing_catch),
    ("CL005", "undocumented failpoint site", _seed_undocumented_failpoint),
    ("CL005", "undocumented event name", _seed_undocumented_event),
]


def run_scenario(root, rule_id, mutator):
    """Run one seeded violation; returns the findings with that rule id."""
    with tempfile.TemporaryDirectory(prefix="catlift_lint_") as tmp:
        fx = make_fixture(root, Path(tmp))
        mutator(fx)
        return [f for f in run_lint(fx) if f.rule == rule_id]


def self_test(root):
    baseline = run_lint(root)
    ok = True
    if baseline:
        ok = False
        print("self-test: pristine tree must be clean, found:")
        for f in baseline:
            print(f"  {f}")
    for rule_id, name, mutator in SCENARIOS:
        fired = run_scenario(root, rule_id, mutator)
        status = "ok" if fired else "FAIL"
        if not fired:
            ok = False
        print(f"self-test [{status}] {rule_id} fires on: {name}")
    return ok


# ---------------------------------------------------------------------------


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parent.parent,
                    help="repo root (default: this script's repo)")
    ap.add_argument("--self-test", action="store_true",
                    help="prove every rule fires on a seeded violation")
    ap.add_argument("--update-store-lock", action="store_true",
                    help="rewrite tools/store_format.lock from the "
                         "current serialization surface")
    args = ap.parse_args()

    if args.update_store_lock:
        update_store_lock(args.root)
        return 0
    if args.self_test:
        return 0 if self_test(args.root) else 1

    findings = run_lint(args.root)
    for f in findings:
        print(f)
    if findings:
        print(f"catlift_lint: {len(findings)} finding(s)")
        return 1
    print("catlift_lint: clean "
          f"({len(RULES)} rules over manifest/store/determinism/"
          "containment/docs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
