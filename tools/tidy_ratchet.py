#!/usr/bin/env python3
"""clang-tidy warning ratchet: the count may fall, never rise.

Runs clang-tidy (profile: .clang-tidy) over every source file in
compile_commands.json, counts warnings per check, and compares the total
against tools/tidy_ratchet.lock:

  * total > locked ceiling          -> fail (new warnings were added)
  * total < locked ceiling          -> fail with a reminder to re-lock,
                                       so the ceiling always tracks the
                                       best state the tree has reached
  * no lock file yet                -> fail with instructions

`--update` rewrites the lock from the current count (the only way the
ceiling moves, so it moves in a reviewed commit).

Usage:
  tidy_ratchet.py --build-dir build [--update] [--jobs N]
"""

import argparse
import json
import re
import subprocess
import sys
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

LOCK = Path(__file__).resolve().parent / "tidy_ratchet.lock"
WARNING_RX = re.compile(r"warning:.*\[([\w.,-]+)\]\s*$")


def tidy_one(binary, build_dir, source):
    proc = subprocess.run(
        [binary, "-p", str(build_dir), "--quiet", source],
        capture_output=True, text=True)
    counts = Counter()
    for line in proc.stdout.splitlines():
        m = WARNING_RX.search(line)
        if m:
            counts[m.group(1)] += 1
    return counts


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", type=Path, default=Path("build"),
                    help="build tree containing compile_commands.json")
    ap.add_argument("--binary", default="clang-tidy")
    ap.add_argument("--jobs", type=int, default=2)
    ap.add_argument("--update", action="store_true",
                    help="rewrite the lock from the current count")
    args = ap.parse_args()

    db_path = args.build_dir / "compile_commands.json"
    if not db_path.exists():
        print(f"tidy_ratchet: {db_path} not found; configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON (the default here)")
        return 2
    sources = sorted({
        entry["file"] for entry in json.loads(db_path.read_text())
        if "/src/" in entry["file"].replace("\\", "/")})

    totals = Counter()
    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for counts in pool.map(
                lambda s: tidy_one(args.binary, args.build_dir, s), sources):
            totals.update(counts)
    total = sum(totals.values())
    print(f"tidy_ratchet: {total} warning(s) across {len(sources)} files")
    for check, n in totals.most_common():
        print(f"  {n:5d}  {check}")

    if args.update:
        LOCK.write_text(json.dumps(
            {"total": total,
             "by_check": dict(sorted(totals.items()))}, indent=2) + "\n")
        print(f"tidy_ratchet: locked ceiling at {total}")
        return 0

    if not LOCK.exists():
        print("tidy_ratchet: no lock file; create one with --update")
        return 2
    ceiling = json.loads(LOCK.read_text())["total"]
    if ceiling is None:
        # Bootstrap state: the committed lock predates the first measured
        # CI run.  Report without failing; the next maintainer locks the
        # measured count with --update and the ratchet engages.
        print(f"tidy_ratchet: baseline not yet locked; measured {total}. "
              "Run tidy_ratchet.py --update and commit the lock to "
              "engage the ratchet.")
        return 0
    if total > ceiling:
        print(f"tidy_ratchet: FAIL -- {total} warnings exceed the locked "
              f"ceiling of {ceiling}; fix the new warnings (the ceiling "
              "only moves down)")
        return 1
    if total < ceiling:
        print(f"tidy_ratchet: count fell to {total} (ceiling {ceiling}); "
              "run tidy_ratchet.py --update and commit the lock so the "
              "improvement sticks")
        return 1
    print(f"tidy_ratchet: OK -- at the locked ceiling of {ceiling}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
