// crash_resume_smoke -- kill a fault campaign mid-run and prove the
// resumed verdicts are byte-identical to an uninterrupted reference.
//
// The CI crash-resume job drives the paper's VCO campaign (layout-
// extracted fault list, early abort and collapsing on) through three
// invocations of this binary:
//
//   crash_resume_smoke reference <store>      cold run, print verdict digest
//   crash_resume_smoke crash     <store> [N]  arm store.append=torn_crash@N:
//                                             the Nth append tears mid-record
//                                             and the process _Exit(137)s
//   crash_resume_smoke resume    <store>      reopen the torn store, resume,
//                                             print verdict digest
//
// The digest is one sorted line per fault -- id, verdict, detection time
// and metric in hex-float -- so `diff reference.txt resumed.txt` is the
// whole byte-identity assertion.  Everything runs at threads=1 so the
// failpoint's hit ordering (and therefore which fault's record tears) is
// deterministic.

#include "core/cat.h"
#include "robust/failpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace {

[[noreturn]] void usage() {
    std::fprintf(stderr,
                 "usage: crash_resume_smoke reference|crash|resume "
                 "<store> [crash-at-append-N]\n");
    std::exit(2);
}

} // namespace

int main(int argc, char** argv) {
    using namespace catlift;
    if (argc < 3) usage();
    const std::string mode = argv[1];
    const std::string store = argv[2];
    if (mode != "reference" && mode != "crash" && mode != "resume") usage();

    try {
        if (mode == "crash") {
            const int n = argc > 3 ? std::atoi(argv[3]) : 20;
            robust::arm("store.append=torn_crash@" + std::to_string(n));
        }

        const core::VcoExperiment e = core::make_vco_experiment();
        const lift::LiftResult lifted =
            lift::extract_faults(e.layout, e.config.tech, e.config.lift);
        anafault::CampaignOptions opt = e.config.campaign;
        opt.threads = 1;  // deterministic failpoint hit ordering
        opt.result_store = store;
        opt.resume = mode == "resume";
        const anafault::CampaignResult res =
            anafault::run_campaign(e.sim_circuit, lifted.faults, opt);

        // In crash mode the failpoint should have killed the process long
        // before this point; reaching it means the campaign was too small
        // for the chosen append index.
        if (mode == "crash") {
            std::fprintf(stderr,
                         "crash_resume_smoke: campaign finished without "
                         "hitting the crash failpoint (lower N)\n");
            return 1;
        }

        std::vector<std::string> lines;
        lines.reserve(res.results.size());
        char buf[256];
        for (const anafault::FaultSimResult& r : res.results) {
            const char* verdict = r.detect_time    ? "detected"
                                  : r.simulated    ? "undetected"
                                  : r.quarantined  ? "quarantined"
                                                   : "failed";
            std::snprintf(buf, sizeof buf, "%d %s t=%a m=%a\n", r.fault_id,
                          verdict, r.detect_time.value_or(-1.0), r.metric);
            lines.push_back(buf);
        }
        std::sort(lines.begin(), lines.end());
        for (const std::string& l : lines) std::fputs(l.c_str(), stdout);
        std::fprintf(stderr,
                     "crash_resume_smoke %s: %zu faults, %zu resumed, "
                     "%zu simulated\n",
                     mode.c_str(), res.results.size(), res.batch.resumed,
                     res.batch.scheduled);
        return 0;
    } catch (const std::exception& ex) {
        std::fprintf(stderr, "crash_resume_smoke: %s\n", ex.what());
        return 1;
    }
}
