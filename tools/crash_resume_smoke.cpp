// crash_resume_smoke -- kill a fault campaign mid-run and prove the
// resumed verdicts are byte-identical to an uninterrupted reference.
//
// The CI crash-resume job drives the paper's VCO campaign (layout-
// extracted fault list, early abort and collapsing on) through three
// invocations of this binary:
//
//   crash_resume_smoke reference <store>      cold run, print verdict digest
//   crash_resume_smoke crash     <store> [N]  arm store.append=torn_crash@N:
//                                             the Nth append tears mid-record
//                                             and the process _Exit(137)s
//   crash_resume_smoke resume    <store>      reopen the torn store, resume,
//                                             print verdict digest
//
// The kill-worker fabric smoke runs the same campaign through the
// multi-process supervisor (batch/fabric.h) with two injected disasters
// -- one worker SIGKILLed mid-campaign by a torn_crash append, and one
// deterministically-crashing poison fault -- and asserts the supervised
// campaign still converges to the single-process reference:
//
//   crash_resume_smoke fabric <store> <workers> <poison-fault-id> <ref.txt>
//       supervise <workers> self-exec'd `fworker` processes; the slot
//       *not* owning the poison fault gets store.append=torn_crash@5 on
//       its first spawn, the owning slot gets worker.fault=poison:<id> on
//       every spawn.  Asserts: the fabric completes, the poison fault is
//       retired `quarantined` with a populated retry_log, and the merged
//       store's digest matches <ref.txt> byte-for-byte on every other
//       fault.
//   crash_resume_smoke fworker <shard> <lo> <hi> <fd> [failpoints]
//       (internal) one fabric worker: run fault ids [lo, hi] into <shard>
//
// The digest is one sorted line per fault -- id, verdict, detection time
// and metric in hex-float -- so `diff reference.txt resumed.txt` is the
// whole byte-identity assertion.  Everything runs at threads=1 so the
// failpoint's hit ordering (and therefore which fault's record tears) is
// deterministic.

#include "anafault/worker.h"
#include "batch/fabric.h"
#include "batch/shard.h"
#include "core/cat.h"
#include "robust/failpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#if defined(__linux__)
#include <unistd.h>
#endif

namespace {

[[noreturn]] void usage() {
    std::fprintf(stderr,
                 "usage: crash_resume_smoke reference|crash|resume <store> "
                 "[crash-at-append-N]\n"
                 "       crash_resume_smoke fabric <store> <workers> "
                 "<poison-fault-id> <reference.txt>\n"
                 "       crash_resume_smoke fworker <shard> <lo> <hi> <fd> "
                 "[failpoints]\n");
    std::exit(2);
}

std::string self_exe(const char* argv0) {
#if defined(__linux__)
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
#endif
    return argv0;
}

std::string digest_line(const catlift::anafault::FaultSimResult& r) {
    const char* verdict = r.detect_time    ? "detected"
                          : r.simulated    ? "undetected"
                          : r.quarantined  ? "quarantined"
                                           : "failed";
    char buf[256];
    std::snprintf(buf, sizeof buf, "%d %s t=%a m=%a\n", r.fault_id, verdict,
                  r.detect_time.value_or(-1.0), r.metric);
    return buf;
}

int run_fabric_smoke(const char* argv0, const std::string& store,
                     unsigned workers, int poison_id,
                     const std::string& ref_path) {
    using namespace catlift;
    const core::VcoExperiment e = core::make_vco_experiment();
    const lift::LiftResult lifted =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);
    anafault::CampaignOptions opt = e.config.campaign;
    opt.threads = 1;
    opt.result_store = store;
    const std::uint64_t manifest =
        anafault::campaign_manifest(e.sim_circuit, lifted.faults, opt);

    std::vector<int> ids;
    for (const lift::Fault& f : lifted.faults.faults) ids.push_back(f.id);
    const std::vector<batch::FaultRange> ranges =
        batch::partition_fault_ranges(ids, workers);
    if (ranges.size() < 2) {
        std::fprintf(stderr, "fabric smoke: need >= 2 worker ranges\n");
        return 1;
    }
    std::size_t poison_slot = ranges.size();
    for (std::size_t k = 0; k < ranges.size(); ++k)
        if (poison_id >= ranges[k].lo && poison_id <= ranges[k].hi)
            poison_slot = k;
    if (poison_slot == ranges.size()) {
        std::fprintf(stderr, "fabric smoke: poison fault %d not in any "
                     "range\n", poison_id);
        return 1;
    }
    // The SIGKILL goes to a *different* slot, so the two disasters exercise
    // independent recovery paths (plain respawn+resume vs quarantine).
    const std::size_t kill_slot = (poison_slot + 1) % ranges.size();

    std::error_code ec;
    std::filesystem::remove(store, ec);
    for (const std::string& shard : batch::list_shards(store))
        std::filesystem::remove(shard, ec);

    batch::FabricOptions fo;
    fo.workers = workers;
    fo.worker_timeout_s = 120.0;  // deaths here come from crashes, not hangs
    fo.backoff_base_s = 0.05;
    const std::string exe = self_exe(argv0);

    batch::WorkerCommand cmd = [&](const batch::WorkerSlot& s) {
        std::vector<std::string> v = {
            exe, "fworker", s.shard, std::to_string(s.range.lo),
            std::to_string(s.range.hi), std::to_string(s.heartbeat_fd)};
        if (s.slot == kill_slot && s.spawn_index == 0)
            v.push_back("store.append=torn_crash@5");
        else if (s.slot == poison_slot)
            v.push_back("worker.fault=poison:" + std::to_string(poison_id));
        return v;
    };
    batch::PoisonRecord poison = [&](int id, int deaths,
                                     const std::string& log) {
        return anafault::quarantine_record(lifted.faults, id, deaths, log);
    };

    const batch::FabricReport frep =
        batch::run_fabric(ids, manifest, store, cmd, poison, fo);
    if (!frep.completed) {
        std::fprintf(stderr, "fabric smoke: fabric did not complete\n");
        return 1;
    }
    batch::merge_shards(store, manifest, batch::list_shards(store));
    const anafault::CampaignResult res = anafault::load_campaign_result(
        e.sim_circuit, lifted.faults, opt, store);

    // The poison fault must be retired `quarantined` with provenance.
    bool poison_ok = false;
    for (const anafault::FaultSimResult& r : res.results)
        if (r.fault_id == poison_id)
            poison_ok = r.quarantined && !r.retry_log.empty();
    if (!poison_ok || frep.poisoned != 1) {
        std::fprintf(stderr,
                     "fabric smoke: poison fault %d not quarantined "
                     "(poisoned=%zu)\n",
                     poison_id, frep.poisoned);
        return 1;
    }
    // One death from the SIGKILLed worker, two from convicting the poison
    // fault.
    if (frep.deaths < 3) {
        std::fprintf(stderr, "fabric smoke: expected >= 3 worker deaths, "
                     "saw %zu\n", frep.deaths);
        return 1;
    }

    // Byte-identity against the single-process reference for every fault
    // except the quarantined one.
    std::vector<std::string> got;
    for (const anafault::FaultSimResult& r : res.results)
        if (r.fault_id != poison_id) got.push_back(digest_line(r));
    std::vector<std::string> want;
    std::ifstream ref(ref_path);
    if (!ref.good()) {
        std::fprintf(stderr, "fabric smoke: cannot read %s\n",
                     ref_path.c_str());
        return 1;
    }
    std::string line;
    while (std::getline(ref, line))
        if (std::atoi(line.c_str()) != poison_id) want.push_back(line + "\n");
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    if (got != want) {
        std::fprintf(stderr,
                     "fabric smoke: merged digest differs from the "
                     "single-process reference (%zu vs %zu lines)\n",
                     got.size(), want.size());
        for (std::size_t i = 0; i < std::max(got.size(), want.size()); ++i) {
            const std::string& g = i < got.size() ? got[i] : "<missing>\n";
            const std::string& w = i < want.size() ? want[i] : "<missing>\n";
            if (g != w)
                std::fprintf(stderr, "  got: %s  want: %s", g.c_str(),
                             w.c_str());
        }
        return 1;
    }
    std::fprintf(stderr,
                 "fabric smoke PASS: %zu workers, %zu spawns, %zu deaths "
                 "(%zu timeouts), fault %d quarantined, %zu verdicts "
                 "byte-identical to reference\n",
                 frep.slots.size(), frep.spawns, frep.deaths, frep.timeouts,
                 poison_id, got.size());
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    using namespace catlift;
    if (argc < 3) usage();
    const std::string mode = argv[1];
    const std::string store = argv[2];

    try {
        if (mode == "fworker") {
            if (argc < 6) usage();
            if (argc > 6) robust::arm(argv[6]);
            const core::VcoExperiment e = core::make_vco_experiment();
            const lift::LiftResult lifted =
                lift::extract_faults(e.layout, e.config.tech, e.config.lift);
            anafault::CampaignOptions opt = e.config.campaign;
            opt.threads = 1;
            anafault::WorkerOptions w;
            w.id_lo = std::atoi(argv[3]);
            w.id_hi = std::atoi(argv[4]);
            w.shard = store;
            w.heartbeat_fd = std::atoi(argv[5]);
            anafault::run_worker_campaign(e.sim_circuit, lifted.faults, opt,
                                          w);
            return 0;
        }
        if (mode == "fabric") {
            if (argc < 6) usage();
            return run_fabric_smoke(argv[0], store,
                                    static_cast<unsigned>(std::atoi(argv[3])),
                                    std::atoi(argv[4]), argv[5]);
        }
        if (mode != "reference" && mode != "crash" && mode != "resume")
            usage();

        if (mode == "crash") {
            const int n = argc > 3 ? std::atoi(argv[3]) : 20;
            robust::arm("store.append=torn_crash@" + std::to_string(n));
        }

        const core::VcoExperiment e = core::make_vco_experiment();
        const lift::LiftResult lifted =
            lift::extract_faults(e.layout, e.config.tech, e.config.lift);
        anafault::CampaignOptions opt = e.config.campaign;
        opt.threads = 1;  // deterministic failpoint hit ordering
        opt.result_store = store;
        opt.resume = mode == "resume";
        const anafault::CampaignResult res =
            anafault::run_campaign(e.sim_circuit, lifted.faults, opt);

        // In crash mode the failpoint should have killed the process long
        // before this point; reaching it means the campaign was too small
        // for the chosen append index.
        if (mode == "crash") {
            std::fprintf(stderr,
                         "crash_resume_smoke: campaign finished without "
                         "hitting the crash failpoint (lower N)\n");
            return 1;
        }

        std::vector<std::string> lines;
        lines.reserve(res.results.size());
        for (const anafault::FaultSimResult& r : res.results)
            lines.push_back(digest_line(r));
        std::sort(lines.begin(), lines.end());
        for (const std::string& l : lines) std::fputs(l.c_str(), stdout);
        std::fprintf(stderr,
                     "crash_resume_smoke %s: %zu faults, %zu resumed, "
                     "%zu simulated\n",
                     mode.c_str(), res.results.size(), res.batch.resumed,
                     res.batch.scheduled);
        return 0;
    } catch (const std::exception& ex) {
        std::fprintf(stderr, "crash_resume_smoke: %s\n", ex.what());
        return 1;
    }
}
