// resistor_sweep -- the Fig. 6 experiment as an interactive example.
//
// The resistor fault model needs a resistance value; the paper shows that
// the "right" value is circuit-dependent by sweeping the resistor that
// bridges the drain of Schmitt-trigger transistor M11 to ground.  This
// example reruns that sweep on the reproduction VCO and prints the output
// waveform for each value.
//
//   $ ./examples/resistor_sweep [R_ohms ...]

#include "circuits/vco.h"
#include "spice/engine.h"
#include "spice/measure.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

int main(int argc, char** argv) {
    using namespace catlift;

    std::vector<double> values;
    for (int i = 1; i < argc; ++i) values.push_back(std::atof(argv[i]));
    if (values.empty()) values = {1e6, 1e5, 3e4, 1.0};

    spice::SimOptions opt;
    opt.uic = true;

    // Fault-free reference.
    auto nominal = circuits::build_vco();
    spice::Simulator nom_sim(nominal, opt);
    const auto nom = nom_sim.tran();
    const auto nom_period =
        spice::estimate_period(nom, circuits::kVcoOutput, 2.5, 1e-6, 4e-6);
    std::printf("fault-free: period %.0f ns\n%s\n",
                nom_period.value_or(0) * 1e9,
                spice::ascii_plot(nom, circuits::kVcoOutput, 72, 10).c_str());

    for (double r : values) {
        netlist::Circuit ckt = circuits::build_vco();
        ckt.add_resistor("RSHORT", circuits::kVcoSchmittDrain, "0", r);
        spice::Simulator sim(ckt, opt);
        const auto wf = sim.tran();
        const auto period = spice::estimate_period(wf, circuits::kVcoOutput,
                                                   2.5, 1.5e-6, 4e-6);
        const double sw = spice::swing(wf, circuits::kVcoOutput, 2e-6, 4e-6);
        std::string verdict;
        if (sw < 0.5)
            verdict = "oscillation stops";
        else if (period && nom_period &&
                 std::abs(*period - *nom_period) / *nom_period < 0.05)
            verdict = "only slightly affected";
        else
            verdict = "visibly changed";
        std::printf("R = %g Ohm: swing %.2f V, period %s ns -> %s\n%s\n", r,
                    sw,
                    period ? std::to_string(*period * 1e9).substr(0, 6).c_str()
                           : "-",
                    verdict.c_str(),
                    spice::ascii_plot(wf, circuits::kVcoOutput, 72, 10)
                        .c_str());
    }
    std::printf("the circuit itself dictates the resistor value needed to\n"
                "model a fault at this location (paper, Fig. 6)\n");
    return 0;
}
