// quickstart -- the CATLIFT public API in five minutes.
//
// Builds a small circuit from a SPICE deck, simulates it, injects one
// bridging fault with AnaFAULT's resistor model, and applies the paper's
// (2 V, 0.2 us) detection criterion.
//
//   $ ./examples/quickstart

#include "anafault/comparator.h"
#include "anafault/fault_models.h"
#include "netlist/parser.h"
#include "netlist/writer.h"
#include "spice/engine.h"
#include "spice/measure.h"

#include <cstdio>

int main() {
    using namespace catlift;

    // 1. A circuit, straight from SPICE text: an RC low-pass driven by a
    //    5 V step.
    const char* deck =
        "rc lowpass quickstart\n"
        "V1 in 0 PULSE(0 5 0 1n 1n 1 2)\n"
        "R1 in out 1k\n"
        "C1 out 0 1n\n"
        ".tran 10n 4u\n"
        ".end\n";
    netlist::Circuit ckt = netlist::parse_spice(deck);
    std::printf("parsed '%s' with %zu devices\n", ckt.title.c_str(),
                ckt.devices.size());

    // 2. Nominal (fault-free) transient.
    spice::SimOptions sim_opt;
    sim_opt.uic = true;  // start from the supply activation, like the paper
    spice::Simulator nominal_sim(ckt, sim_opt);
    const spice::Waveforms nominal = nominal_sim.tran();
    std::printf("nominal V(out) at 1us = %.3f V (expect ~3.16 V)\n",
                nominal.at("out", 1e-6));

    // 3. Inject a hard fault: a bridge from the output to ground, using
    //    the paper's resistor model (0.01 Ohm).
    netlist::Circuit faulty = ckt;
    anafault::inject_short(faulty, "out", "0");
    std::printf("\ninjected deck:\n%s\n",
                netlist::write_spice(faulty).c_str());

    spice::Simulator faulty_sim(faulty, sim_opt);
    const spice::Waveforms bad = faulty_sim.tran();

    // 4. Detection with the paper's tolerances: 2 V amplitude, 0.2 us of
    //    accumulated mismatch.
    anafault::DetectionSpec spec;
    spec.observed = {"out"};
    const auto t_detect = anafault::detect_time(nominal, bad, spec);
    if (t_detect)
        std::printf("fault detected at t = %.2f us\n", *t_detect * 1e6);
    else
        std::printf("fault NOT detected within the test window\n");

    // 5. Waveforms, side by side.
    std::printf("\nnominal response:\n%s\n",
                spice::ascii_plot(nominal, "out", 64, 10).c_str());
    std::printf("faulty response:\n%s\n",
                spice::ascii_plot(bad, "out", 64, 10).c_str());
    return 0;
}
