// ota_methods -- three detection methodologies on one circuit.
//
// The CAT system exists "for the comparison of different test preparation
// techniques" (paper abstract).  This example runs the same LIFT fault
// list for the 7-transistor OTA buffer through three AnaFAULT back-ends
// and compares what each test style catches:
//
//   1. DC screen        -- one operating point per fault (cheapest)
//   2. AC sweep         -- small-signal magnitude response (linear tests)
//   3. transient        -- the paper's time-domain campaign (most thorough)
//
//   $ ./examples/ota_methods

#include "anafault/ac_campaign.h"
#include "anafault/campaign.h"
#include "anafault/dc_campaign.h"
#include "circuits/ota.h"
#include "layout/cellgen.h"
#include "lift/extract_faults.h"

#include <cstdio>
#include <map>
#include <string>

int main() {
    using namespace catlift;

    // LIFT list from the synthesised layout.
    circuits::OtaOptions dev_opt;
    dev_opt.with_sources = false;
    const netlist::Circuit dev = circuits::build_ota(dev_opt);
    const layout::Layout lo = layout::generate_cell_layout(dev);
    lift::LiftOptions lopt;
    lopt.net_blocks = circuits::ota_net_blocks();
    const auto lift_res = lift::extract_faults(
        lo, layout::Technology::single_poly_double_metal(), lopt);
    std::printf("LIFT extracted %zu faults from the OTA layout\n\n",
                lift_res.faults.size());

    // 1. DC screen: static supply, watch the output level.
    netlist::Circuit dc_ckt = circuits::build_ota();
    dc_ckt.device("VDD").source = netlist::SourceSpec::make_dc(5.0);
    dc_ckt.device("VIN").source = netlist::SourceSpec::make_dc(2.5);
    anafault::DcScreenOptions dopt;
    dopt.observed = {circuits::kOtaOutput};
    dopt.v_tol = 0.5;
    const auto dc = anafault::run_dc_screen(dc_ckt, lift_res.faults, dopt);

    // 2. AC sweep: follower magnitude response, 3 dB tolerance.
    netlist::Circuit ac_ckt = dc_ckt;
    auto& vin = ac_ckt.device("VIN").source;
    vin.ac_mag = 1.0;
    anafault::AcCampaignOptions aopt;
    aopt.observed = {circuits::kOtaOutput};
    aopt.sweep.fstart = 1e3;
    aopt.sweep.fstop = 1e9;
    const auto ac = anafault::run_ac_campaign(ac_ckt, lift_res.faults, aopt);

    // 3. Transient campaign with the sine stimulus.
    anafault::CampaignOptions topt;
    topt.threads = 4;
    topt.detection.observed = {circuits::kOtaOutput};
    topt.detection.v_tol = 0.4;
    const auto tr = anafault::run_campaign(circuits::build_ota(),
                                           lift_res.faults, topt);

    std::printf("  method      coverage   notes\n");
    std::printf("  DC screen   %5.1f%%     one NR solve per fault\n",
                dc.coverage());
    std::printf("  AC sweep    %5.1f%%     linearised response, 3 dB tol\n",
                ac.coverage());
    std::printf("  transient   %5.1f%%     400-step, 0.4 V / 0.2 us tol\n\n",
                tr.final_coverage());

    // Per-fault verdict matrix for the first dozen faults.
    std::printf("  fault                                   DC   AC   TRAN\n");
    for (std::size_t i = 0; i < lift_res.faults.size() && i < 12; ++i) {
        const auto& f = lift_res.faults.faults[i];
        const char* d = dc.results[i].detected ? "yes" : ".";
        const char* a = ac.results[i].detected ? "yes" : ".";
        const char* t = tr.results[i].detect_time ? "yes" : ".";
        std::printf("  %-38s %-4s %-4s %s\n", f.describe().c_str(), d, a, t);
    }
    std::printf("\nfaults only the transient test sees: ");
    int only_tran = 0;
    for (std::size_t i = 0; i < lift_res.faults.size(); ++i)
        if (tr.results[i].detect_time && !dc.results[i].detected &&
            !ac.results[i].detected)
            ++only_tran;
    std::printf("%d\n", only_tran);
    return 0;
}
