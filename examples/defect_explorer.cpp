// defect_explorer -- the physics behind the fault probabilities.
//
// Prints the paper's Tab. 1 defect statistics, the Ferris-Prabhu size
// distribution, and how the weighted critical area of a bridge site moves
// with spacing and facing length -- the quantities LIFT integrates for
// every layout site.
//
//   $ ./examples/defect_explorer

#include "defects/defects.h"

#include <cstdio>

int main() {
    using namespace catlift;
    using namespace catlift::defects;

    const DefectModel model = DefectModel::date95();
    const DefectStatistics& stats = model.stats();

    std::printf("== Tab. 1: failure mechanisms and relative densities ==\n");
    std::printf("  %-20s %-8s %-10s %s\n", "mechanism", "mode", "rel.dens",
                "abs [cm^-2]");
    for (const Mechanism& m : stats.mechanisms) {
        std::printf("  %-20s %-8s %-10.2f %.2f\n", m.name.c_str(),
                    to_string(m.mode), m.rel_density,
                    stats.density_per_cm2(m));
    }

    std::printf("\n== Ferris-Prabhu size distribution (x0 = %.1f um) ==\n",
                model.dist().x0() / 1000.0);
    std::printf("  size[um]  pdf        P(>size)\n");
    for (double x : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
        std::printf("  %-9.2f %-10.3g %.4f\n", x, model.dist().pdf(x * 1000),
                    model.dist().survival(x * 1000));
    }

    std::printf("\n== bridge probability vs spacing "
                "(metal1, facing 100 um) ==\n");
    const Mechanism* m1s =
        stats.find(layout::Layer::Metal1, FailureMode::Short);
    std::printf("  spacing[um]  p(bridge)\n");
    for (double s : {2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0}) {
        std::printf("  %-12.1f %.3g\n", s,
                    model.bridge_probability(*m1s, 100000.0, s * 1000));
    }

    std::printf("\n== bridge probability vs facing length "
                "(metal2, spacing 3 um) ==\n");
    const Mechanism* m2s =
        stats.find(layout::Layer::Metal2, FailureMode::Short);
    std::printf("  facing[um]  p(bridge)\n");
    for (double f : {10.0, 30.0, 100.0, 300.0, 1000.0}) {
        std::printf("  %-11.0f %.3g\n", f,
                    model.bridge_probability(*m2s, f * 1000, 3000.0));
    }

    std::printf("\n== contact/via opens vs cluster size ==\n");
    const Mechanism* cd = stats.find(layout::Layer::Contact,
                                     FailureMode::Open, layout::Layer::NDiff);
    const Mechanism* via =
        stats.find(layout::Layer::Via, FailureMode::Open);
    std::printf("  single 2x2 contact : %.3g\n",
                model.cut_probability(*cd, 2000, 2000));
    std::printf("  2-contact cluster  : %.3g   (redundancy pays)\n",
                model.cut_probability(*cd, 2000, 10000));
    std::printf("  single 2x2 via     : %.3g\n",
                model.cut_probability(*via, 2000, 2000));
    std::printf("  2-via cluster      : %.3g\n",
                model.cut_probability(*via, 2000, 6000));
    return 0;
}
