// vco_campaign -- the paper's section VI experiment, end to end.
//
// Synthesises the 26-transistor VCO layout, runs LIFT (fault extraction
// simultaneous with circuit extraction, LVS-checked), and drives the full
// AnaFAULT campaign with the paper's 400-step transient and (2 V, 0.2 us)
// detection tolerances.  Writes the artefacts a design/test engineer would
// keep: the layout, the weighted fault list, the per-fault report and the
// coverage curve.
//
//   $ ./examples/vco_campaign [threads] [output_dir]

#include "core/cat.h"
#include "layout/layout.h"
#include "layout/render.h"
#include "lift/fault.h"
#include "netlist/writer.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

int main(int argc, char** argv) {
    using namespace catlift;

    const unsigned threads =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
    const std::string out_dir = argc > 2 ? argv[2] : ".";

    std::printf("== CATLIFT: VCO fault extraction + simulation ==\n\n");

    core::VcoExperiment e = core::make_vco_experiment(threads);
    std::printf("schematic : %zu devices (%zu transistors)\n",
                e.device_netlist.devices.size(),
                e.device_netlist.count(netlist::DeviceKind::Mosfet));
    std::printf("layout    : %zu shapes, %.0f x %.0f um\n\n", e.layout.size(),
                geom::to_um(e.layout.bbox().width()),
                geom::to_um(e.layout.bbox().height()));

    const core::CatReport rep =
        core::run_cat(e.sim_circuit, e.device_netlist, e.layout, e.config);

    std::printf("%s\n", layout::ascii_render(e.layout).c_str());
    std::printf("%s\n", core::cat_summary(rep).c_str());
    std::printf("%s\n",
                anafault::class_breakdown(rep.campaign, rep.lift.faults)
                    .c_str());
    std::printf("%s\n", anafault::coverage_plot_ascii(rep.campaign).c_str());
    std::printf("%s\n", anafault::campaign_table(rep.campaign).c_str());

    // Persist the artefacts.
    layout::write_layout_file(out_dir + "/vco.lay", e.layout);
    netlist::write_spice_file(out_dir + "/vco.sp", e.sim_circuit);
    {
        std::ofstream f(out_dir + "/vco.flt");
        lift::write_faultlist(f, rep.lift.faults);
    }
    {
        std::ofstream f(out_dir + "/vco_coverage.csv");
        f << anafault::coverage_csv(rep.campaign);
    }
    std::printf("wrote %s/vco.lay, vco.sp, vco.flt, vco_coverage.csv\n",
                out_dir.c_str());
    return 0;
}
